#include "monitor/eviction.hpp"

#include <algorithm>
#include <charconv>

#include "common/assert.hpp"

namespace swmon {

const char* EvictionPolicyName(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kCreationOrder:
      return "creation-order";
    case EvictionPolicy::kLru:
      return "lru";
    case EvictionPolicy::kRandom:
      return "random";
    case EvictionPolicy::kTimeoutPriority:
      return "timeout-priority";
  }
  return "unknown";
}

bool ParseEvictionPolicy(std::string_view name, EvictionPolicy* out) {
  if (name == "creation-order" || name == "creation") {
    *out = EvictionPolicy::kCreationOrder;
  } else if (name == "lru") {
    *out = EvictionPolicy::kLru;
  } else if (name == "random") {
    *out = EvictionPolicy::kRandom;
  } else if (name == "timeout-priority" || name == "timeout") {
    *out = EvictionPolicy::kTimeoutPriority;
  } else {
    return false;
  }
  return true;
}

bool ParseEvictionSpec(std::string_view spec, EvictionConfig* out,
                       std::string* error) {
  const auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  std::vector<std::string_view> parts;
  while (!spec.empty()) {
    const std::size_t colon = spec.find(':');
    parts.push_back(spec.substr(0, colon));
    if (colon == std::string_view::npos) break;
    spec.remove_prefix(colon + 1);
  }
  if (parts.empty() || parts.size() > 3)
    return fail("eviction spec is policy[:max_instances[:max_state_bytes]]");
  EvictionConfig cfg;
  if (!ParseEvictionPolicy(parts[0], &cfg.policy))
    return fail("unknown eviction policy '" + std::string(parts[0]) +
                "' (creation-order|lru|random|timeout-priority)");
  const auto parse_size = [&](std::string_view s, std::size_t* v) {
    const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), *v);
    return ec == std::errc{} && p == s.data() + s.size();
  };
  if (parts.size() >= 2 && !parse_size(parts[1], &cfg.max_instances))
    return fail("bad max_instances '" + std::string(parts[1]) + "'");
  if (parts.size() >= 3 && !parse_size(parts[2], &cfg.max_state_bytes))
    return fail("bad max_state_bytes '" + std::string(parts[2]) + "'");
  *out = cfg;
  return true;
}

// ---------------------------------------------------------- EvictionState

void EvictionState::Configure(const EvictionConfig& config,
                              std::size_t num_vars) {
  config_ = config;
  cap_ = 0;
  bytes_bound_ = false;
  std::size_t byte_cap = 0;
  if (config.max_state_bytes != 0)
    byte_cap = std::max<std::size_t>(
        1, config.max_state_bytes / ModelInstanceBytes(num_vars));
  if (config.max_instances != 0 && byte_cap != 0) {
    cap_ = std::min(config.max_instances, byte_cap);
    bytes_bound_ = byte_cap < config.max_instances;
  } else if (config.max_instances != 0) {
    cap_ = config.max_instances;
  } else if (byte_cap != 0) {
    cap_ = byte_cap;
    bytes_bound_ = true;
  }
  rng_ = config.seed != 0 ? config.seed : 0x9E3779B97F4A7C15ULL;
  meta_.clear();
  order_.clear();
  heap_.clear();
  ids_.clear();
}

std::uint64_t EvictionState::NextRandom() {
  // xorshift64* — tiny, seeded, identical on both engines.
  std::uint64_t x = rng_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  rng_ = x;
  return x * 0x2545F4914F6CDD1DULL;
}

bool EvictionState::EntryLive(const Entry& e) const {
  const auto it = meta_.find(e.id);
  if (it == meta_.end()) return false;
  return e.key == (config_.policy == EvictionPolicy::kLru
                       ? it->second.touch
                       : it->second.deadline);
}

void EvictionState::PushEntry(std::uint64_t key, std::uint64_t id) {
  heap_.push_back(Entry{key, id});
  const auto before = [this](const Entry& a, const Entry& b) {
    // `a` orders after `b` (std::push_heap keeps the comparator-max on
    // top). kLru pops the minimum (touch, id); kTimeoutPriority pops the
    // maximum deadline, ties to the smallest id. Strict total order over
    // distinct (key, id) pairs — what makes the pop sequence independent
    // of the heap's internal layout.
    if (a.key != b.key)
      return config_.policy == EvictionPolicy::kLru ? a.key > b.key
                                                    : a.key < b.key;
    return a.id > b.id;
  };
  std::push_heap(heap_.begin(), heap_.end(), before);
}

void EvictionState::PopEntry() {
  const auto before = [this](const Entry& a, const Entry& b) {
    if (a.key != b.key)
      return config_.policy == EvictionPolicy::kLru ? a.key > b.key
                                                    : a.key < b.key;
    return a.id > b.id;
  };
  std::pop_heap(heap_.begin(), heap_.end(), before);
  heap_.pop_back();
}

void EvictionState::OnCreate(std::uint64_t id, std::uint64_t handle,
                             std::uint64_t event_seq) {
  Meta m;
  m.handle = handle;
  m.touch = event_seq;
  m.deadline = kNoDeadline;
  meta_.emplace(id, m);
  switch (config_.policy) {
    case EvictionPolicy::kCreationOrder:
      order_.push_back(id);
      break;
    case EvictionPolicy::kLru:
      PushEntry(event_seq, id);
      break;
    case EvictionPolicy::kRandom:
      ids_.push_back(id);  // ids are monotone: append keeps it sorted
      break;
    case EvictionPolicy::kTimeoutPriority:
      PushEntry(kNoDeadline, id);
      break;
  }
}

void EvictionState::OnTouch(std::uint64_t id, std::uint64_t event_seq) {
  if (config_.policy != EvictionPolicy::kLru) return;
  const auto it = meta_.find(id);
  if (it == meta_.end() || it->second.touch == event_seq) return;
  it->second.touch = event_seq;
  PushEntry(event_seq, id);
}

void EvictionState::OnDeadline(std::uint64_t id,
                               std::uint64_t deadline_nanos) {
  if (config_.policy != EvictionPolicy::kTimeoutPriority) return;
  const auto it = meta_.find(id);
  if (it == meta_.end() || it->second.deadline == deadline_nanos) return;
  it->second.deadline = deadline_nanos;
  PushEntry(deadline_nanos, id);
}

void EvictionState::OnDestroy(std::uint64_t id) {
  const auto it = meta_.find(id);
  if (it == meta_.end()) return;
  meta_.erase(it);
  if (config_.policy == EvictionPolicy::kRandom) {
    const auto pos = std::lower_bound(ids_.begin(), ids_.end(), id);
    if (pos != ids_.end() && *pos == id) ids_.erase(pos);
  }
  MaybeCompact();
}

void EvictionState::MaybeCompact() {
  // Same lazy-prune threshold the old creation-order deque used: compact
  // once stale entries dominate, so churn below the cap never grows the
  // queue unboundedly (amortized O(1) per destruction).
  const std::size_t limit = 2 * meta_.size() + 64;
  switch (config_.policy) {
    case EvictionPolicy::kCreationOrder: {
      if (order_.size() <= limit) return;
      std::deque<std::uint64_t> live;
      for (const std::uint64_t id : order_)
        if (meta_.contains(id)) live.push_back(id);
      order_ = std::move(live);
      break;
    }
    case EvictionPolicy::kLru:
    case EvictionPolicy::kTimeoutPriority: {
      if (heap_.size() <= limit) return;
      heap_.clear();
      // meta_ iteration order is engine-dependent, but only the heap's
      // internal layout depends on it — pops follow the total order.
      for (const auto& [id, m] : meta_)
        heap_.push_back(Entry{config_.policy == EvictionPolicy::kLru
                                  ? m.touch
                                  : m.deadline,
                              id});
      const auto before = [this](const Entry& a, const Entry& b) {
        if (a.key != b.key)
          return config_.policy == EvictionPolicy::kLru ? a.key > b.key
                                                        : a.key < b.key;
        return a.id > b.id;
      };
      std::make_heap(heap_.begin(), heap_.end(), before);
      break;
    }
    case EvictionPolicy::kRandom:
      break;  // ids_ is pruned eagerly
  }
}

EvictionState::Victim EvictionState::PickVictim() {
  SWMON_ASSERT_MSG(!meta_.empty(), "PickVictim with no live instances");
  switch (config_.policy) {
    case EvictionPolicy::kCreationOrder: {
      while (!order_.empty() && !meta_.contains(order_.front()))
        order_.pop_front();
      SWMON_ASSERT(!order_.empty());
      const std::uint64_t id = order_.front();
      order_.pop_front();
      return Victim{id, meta_.at(id).handle};
    }
    case EvictionPolicy::kLru:
    case EvictionPolicy::kTimeoutPriority: {
      for (;;) {
        SWMON_ASSERT(!heap_.empty());
        const Entry top = heap_.front();
        PopEntry();
        if (EntryLive(top)) return Victim{top.id, meta_.at(top.id).handle};
      }
    }
    case EvictionPolicy::kRandom: {
      const std::size_t r =
          static_cast<std::size_t>(NextRandom() % ids_.size());
      const std::uint64_t id = ids_[r];
      return Victim{id, meta_.at(id).handle};
    }
  }
  SWMON_ASSERT_MSG(false, "unreachable eviction policy");
  return Victim{0, 0};
}

std::size_t EvictionState::QueueSize() const {
  switch (config_.policy) {
    case EvictionPolicy::kCreationOrder:
      return order_.size();
    case EvictionPolicy::kLru:
    case EvictionPolicy::kTimeoutPriority:
      return heap_.size();
    case EvictionPolicy::kRandom:
      return ids_.size();
  }
  return 0;
}

}  // namespace swmon
