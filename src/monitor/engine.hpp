// The runtime monitor engine.
//
// A MonitorEngine executes one Property over a stream of dataplane events.
// Its state is a set of *instances* — partially completed attempts to
// witness a violation (Feature 8) — each holding a binding environment, the
// index of the next observation to match, and an optional deadline.
//
// Event processing order (all within ProcessEvent):
//   1. time advances: expired windows either kill instances (Feature 3) or
//      fire pending timeout observations (Feature 7);
//   2. abort patterns discharge obligations (Feature 4);
//   3. live instances waiting for later stages try to advance — possibly
//      many per event (multiple match);
//   4. stage 0 creates (or refreshes) instances, subject to suppression;
//   5. suppressor patterns record their keys.
//
// Instance lookup is indexed: for each stage, the equality-against-variable
// conditions form a link key; instances whose link variables are bound are
// hashed under the projection of those variables, so an event finds its
// candidates with one hash probe (this is the "static Varanus" /
// register-friendly layout Sec 3.3 argues for). Instances whose link
// variables are not yet bound — wandering match — and stages with no link
// conditions — multiple match — fall back to a per-stage scan list.
// bench_store ablates indexed vs. forced-linear lookup.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dataplane/flow_key.hpp"
#include "dataplane/switch.hpp"
#include "event/timer_set.hpp"
#include "monitor/property_monitor.hpp"
#include "monitor/spec.hpp"
#include "monitor/violation.hpp"
#include "telemetry/snapshot.hpp"

namespace swmon {

class MonitorEngine : public PropertyMonitor {
 public:
  explicit MonitorEngine(Property property, MonitorConfig config = {});

  // Not copyable/movable: stage stores hold interior references.
  MonitorEngine(const MonitorEngine&) = delete;
  MonitorEngine& operator=(const MonitorEngine&) = delete;

  /// Feeds one event. Time must be monotonically non-decreasing.
  void ProcessEvent(const DataplaneEvent& event) override;

  /// Advances monitor time without an event, firing any elapsed windows
  /// (needed to observe timeout-action violations in quiet periods).
  void AdvanceTime(SimTime now) override;

  // --- dispatch-layer entry points (MonitorSet) ---
  /// Delivery through the pre-filtered dispatch layer: counted separately
  /// from direct ProcessEvent calls so the filter's reach is measurable.
  void ProcessDispatchedEvent(const DataplaneEvent& event) override {
    ++stats_.events_dispatched;
    ProcessEvent(event);
  }
  /// An event whose type is outside this property's interest signature. The
  /// engine must still observe its timestamp so windows keep expiring
  /// (Features 3/7) exactly as they would under broadcast delivery.
  void NoteFilteredEvent(SimTime now) override {
    ++stats_.events_filtered;
    AdvanceTime(now);
  }

  /// Instance-sharded delivery: runs only the passes `stage_mask` selects
  /// (see PropertyMonitor::ProcessShardedEvent). The caller advanced time
  /// already; this must not fire timers interleaved with match work.
  void ProcessShardedEvent(const DataplaneEvent& event,
                           std::uint64_t stage_mask, bool count) override;

  std::uint64_t created_count() const override {
    return stats_.instances_created;
  }

  const Property& property() const override { return property_; }

  /// DEPRECATED shim (one PR): read counters via CollectInto() / a
  /// telemetry::Snapshot instead. Returns by value with the TimerSet
  /// mirrors filled live, so unlike the old accessor it is never stale.
  [[deprecated("query engine counters via telemetry::Snapshot (CollectInto)")]]
  MonitorStats stats() const {
    return StatsNow();
  }

  /// Publishes this engine's counters into `snap` under
  /// `monitor.engine.<name>.<stat>` (counters) plus the `live_instances` /
  /// `eviction_queue` / `state_bytes` gauges. Timer values are read from
  /// the TimerSet at call time — never stale. The engine's stats struct is
  /// its own single-threaded shard; ParallelMonitorSet calls this only at
  /// quiesce points, which is what keeps the merge TSan-clean.
  void CollectInto(telemetry::Snapshot& snap,
                   std::string_view name) const override;

  const std::vector<Violation>& violations() const override {
    return violations_;
  }
  std::vector<Violation> TakeViolations() override {
    return std::move(violations_);
  }
  std::size_t live_instances() const override { return instances_.size(); }
  SimTime now() const override { return now_; }
  const TimerSet& timers() const { return timers_; }
  /// Pending eviction-policy queue entries (live + not-yet-pruned stale
  /// ones). Empty when eviction is disabled; bounded by ~2x live otherwise.
  std::size_t eviction_queue_size() const { return eviction_.QueueSize(); }

  /// Approximate resident bytes of monitor state (instances + provenance);
  /// bench_provenance reports this.
  std::size_t StateBytes() const override;

 private:
  struct Instance {
    std::uint64_t id;
    std::uint32_t stage;  // next stage to match
    SimTime created;
    SimTime deadline = SimTime::Infinity();
    std::vector<std::optional<std::uint64_t>> env;
    std::uint64_t last_event_seq = 0;  // one advance per event
    std::uint32_t stage_matches = 0;   // toward the stage's min_count
    std::vector<ProvenanceEvent> history;  // kFull only
  };

  /// Per-stage candidate index (see file comment).
  struct StageStore {
    std::vector<std::pair<FieldId, VarId>> link;  // field == $var conditions
    std::unordered_map<FlowKey, std::vector<std::uint64_t>, FlowKeyHash> keyed;
    std::vector<std::uint64_t> scan;  // unkeyed / linear-mode instances
  };

  // --- evaluation ---
  bool EvalCondition(const Condition& c, const FieldMap& fields,
                     const std::vector<std::optional<std::uint64_t>>& env) const;
  bool MatchPattern(const Pattern& p, const DataplaneEvent& ev,
                    const std::vector<std::optional<std::uint64_t>>& env) const;
  /// Applies a stage's bindings to env; false when a required event field is
  /// absent (the stage then does not match).
  bool ApplyBindings(const Stage& stage, const DataplaneEvent& ev,
                     std::vector<std::optional<std::uint64_t>>& env);

  // --- instance lifecycle ---
  void InsertIntoStore(Instance& inst);
  void RemoveFromStore(const Instance& inst);
  void DestroyInstance(std::uint64_t id);
  void AdvanceInstance(Instance& inst, const DataplaneEvent* ev);
  void ArmWindow(Instance& inst, const Stage& completed,
                 const DataplaneEvent* ev);
  void ReportViolation(const Instance& inst, SimTime when,
                       const std::string& trigger,
                       std::uint32_t trigger_stage_index);
  void OnTimerExpiry(std::uint64_t id, SimTime deadline);
  void EvictIfNeeded();
  /// Current stats with the TimerSet mirrors filled from the live TimerSet.
  MonitorStats StatsNow() const {
    MonitorStats s = stats_;
    s.timers_armed = timers_.total_armed();
    s.timer_stale_pops = timers_.stale_popped();
    return s;
  }

  // --- per-event passes (bit k of stage_mask admits stage-k instances) ---
  void RunAbortPass(const DataplaneEvent& ev, std::uint64_t stage_mask);
  void RunAdvancePass(const DataplaneEvent& ev, std::uint64_t stage_mask);
  void RunNaiveRefreshPass(const DataplaneEvent& ev);
  void RunCreatePass(const DataplaneEvent& ev);
  void RunSuppressorPass(const DataplaneEvent& ev);

  std::optional<FlowKey> Stage0Key(
      const std::vector<std::optional<std::uint64_t>>& env) const;

  Property property_;
  MonitorConfig config_;
  MonitorStats stats_;
  std::vector<Violation> violations_;

  SimTime now_ = SimTime::Zero();
  std::uint64_t event_seq_ = 0;
  std::uint64_t next_instance_id_ = 1;
  std::uint64_t rr_counter_ = 0;

  std::unordered_map<std::uint64_t, Instance> instances_;
  std::vector<StageStore> stores_;  // one per stage (index 0 unused)
  /// Dedup/refresh map: stage-0 binding projection -> instance ids.
  std::unordered_map<FlowKey, std::vector<std::uint64_t>, FlowKeyHash>
      stage0_index_;
  std::vector<VarId> stage0_bound_vars_;
  std::unordered_set<FlowKey, FlowKeyHash> suppressed_;
  /// Bounded-memory eviction (resolved from config_.EffectiveEviction()).
  /// Hooks are only called when ecfg_.enabled() — the disabled default
  /// costs one cached-bool test per lifecycle point.
  EvictionConfig ecfg_;
  bool evict_enabled_ = false;
  EvictionState eviction_;
  std::uint64_t evictions_capacity_ = 0;  // reason attribution (telemetry)
  std::uint64_t evictions_bytes_ = 0;
  TimerSet timers_;
};

}  // namespace swmon
