// Violation reports and provenance (Feature 10).
//
// The paper's provenance discussion: reporting only the trigger event is
// suboptimal for debugging, but recording every contributing packet is
// expensive. The engine supports all three points on that spectrum:
//   kNone    — property name, time, and final stage only.
//   kLimited — plus the instance environment (the header values retained
//              for matching, "conveyed along with the final event" at no
//              extra storage cost — the paper's recommended default).
//   kFull    — plus a copy of every matched event (fields + time), the
//              expensive end measured by bench_provenance.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/sim_time.hpp"
#include "packet/field.hpp"

namespace swmon {

enum class ProvenanceLevel : std::uint8_t { kNone = 0, kLimited = 1, kFull = 2 };

const char* ProvenanceLevelName(ProvenanceLevel level);

struct ProvenanceEvent {
  SimTime time;
  std::uint32_t stage;  // which observation this event completed
  FieldMap fields;
};

struct Violation {
  std::string property;
  SimTime time;
  std::uint64_t instance_id = 0;
  std::string trigger_stage;
  /// Index of the stage whose completion (or timeout) triggered the report.
  /// Not rendered by ToString(); the parallel merge keys on it to replay the
  /// serial advance-pass order (highest stage first) across engine replicas.
  std::uint32_t trigger_stage_index = 0;

  /// kLimited and kFull: bound (name, value) pairs.
  std::vector<std::pair<std::string, std::uint64_t>> bindings;

  /// kFull only: every event that advanced this instance.
  std::vector<ProvenanceEvent> history;

  std::string ToString() const;
};

}  // namespace swmon
