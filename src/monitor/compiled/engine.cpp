// CompiledEngine: bytecode execution over packed state records.
//
// Every pass is a line-for-line mirror of the corresponding
// MonitorEngine pass (engine.cpp) — same pass order, same candidate
// enumeration, same counter increments, same instance-id assignment —
// with the spec-tree walk replaced by the flat program and the
// per-instance heap objects replaced by slab records. When editing,
// change engine.cpp first and replicate here; the differential tests
// will catch any drift.

#include "monitor/compiled/engine.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "monitor/fused_keys.hpp"

namespace swmon::compiled {

// ---------------------------------------------------------------- OpenMap

std::uint32_t OpenMap::FindHashed(std::uint64_t hash, const std::uint64_t* key,
                                  std::uint32_t len) const {
  if (cells_.empty()) {
    NoteProbe(0);
    return kNone;
  }
  const std::size_t mask = cells_.size() - 1;
  std::uint64_t steps = 0;
  for (std::size_t idx = hash & mask;; idx = (idx + 1) & mask) {
    const Cell& c = cells_[idx];
    ++steps;
    if (c.state == kEmpty) {
      NoteProbe(steps);
      return kNone;
    }
    if (c.state == kFull && KeyEquals(c, hash, key, len)) {
      NoteProbe(steps);
      return static_cast<std::uint32_t>(idx);
    }
  }
}

std::uint32_t OpenMap::Insert(const std::uint64_t* key, std::uint32_t len) {
  if (cells_.empty() || (used_ + 1) * 10 >= cells_.size() * 7) {
    Rehash(cells_.empty() ? 16 : cells_.size() * 2);
  } else if (dead_words_ > 64 && dead_words_ * 2 > pool_.size()) {
    // Same capacity, compacted pool: erases leave their key words behind
    // (and tombstone reuse appends without raising used_), so under pure
    // churn the pool would otherwise grow without ever tripping the
    // occupancy resize above.
    Rehash(cells_.size());
  }
  const std::uint64_t h = HashKey(key, len);
  const std::size_t mask = cells_.size() - 1;
  std::size_t tomb = static_cast<std::size_t>(-1);
  std::uint64_t steps = 0;
  for (std::size_t idx = h & mask;; idx = (idx + 1) & mask) {
    Cell& c = cells_[idx];
    ++steps;
    if (c.state == kFull) {
      if (KeyEquals(c, h, key, len)) {
        NoteProbe(steps);
        return static_cast<std::uint32_t>(idx);
      }
      continue;
    }
    if (c.state == kTombstone) {
      if (tomb == static_cast<std::size_t>(-1)) tomb = idx;
      continue;
    }
    const std::size_t target = tomb != static_cast<std::size_t>(-1) ? tomb : idx;
    NoteProbe(steps);
    Cell& tc = cells_[target];
    const bool reused_tomb = tc.state == kTombstone;
    tc.hash = h;
    tc.k01[0] = len > 0 ? key[0] : 0;
    tc.k01[1] = len > 1 ? key[1] : 0;
    tc.key_pos = static_cast<std::uint32_t>(pool_.size());
    tc.key_len = static_cast<std::uint16_t>(len);
    tc.state = kFull;
    pool_.insert(pool_.end(), key, key + len);
    ++size_;
    if (!reused_tomb) ++used_;
    return static_cast<std::uint32_t>(target);
  }
}

void OpenMap::EraseAt(std::uint32_t cell) {
  Cell& c = cells_[cell];
  c.state = kTombstone;
  std::vector<std::uint32_t>().swap(c.slots);
  --size_;
  dead_words_ += c.key_len;
}

void OpenMap::Rehash(std::size_t new_cap) {
  std::vector<Cell> old_cells = std::move(cells_);
  std::vector<std::uint64_t> old_pool = std::move(pool_);
  cells_.assign(new_cap, Cell{});
  pool_.clear();
  used_ = size_;
  dead_words_ = 0;
  const std::size_t mask = new_cap - 1;
  for (Cell& c : old_cells) {
    if (c.state != kFull) continue;
    std::size_t idx = c.hash & mask;
    while (cells_[idx].state == kFull) idx = (idx + 1) & mask;
    Cell& nc = cells_[idx];
    nc.hash = c.hash;
    nc.k01[0] = c.k01[0];
    nc.k01[1] = c.k01[1];
    nc.key_pos = static_cast<std::uint32_t>(pool_.size());
    nc.key_len = c.key_len;
    nc.state = kFull;
    pool_.insert(pool_.end(), old_pool.begin() + c.key_pos,
                 old_pool.begin() + c.key_pos + c.key_len);
    nc.slots = std::move(c.slots);
  }
}

std::size_t OpenMap::MemoryBytes() const {
  std::size_t bytes = cells_.capacity() * sizeof(Cell) +
                      pool_.capacity() * sizeof(std::uint64_t);
  for (const Cell& c : cells_)
    bytes += c.slots.capacity() * sizeof(std::uint32_t);
  return bytes;
}

// ----------------------------------------------------------- construction

namespace {
Program MustCompile(const Property& property) {
  std::optional<Program> prog = CompileProperty(property);
  SWMON_ASSERT_MSG(prog.has_value(),
                   "property exceeds the compiled engine's limits "
                   "(CreatePropertyMonitor falls back to the interpreter)");
  return std::move(*prog);
}
}  // namespace

CompiledEngine::CompiledEngine(Property property, MonitorConfig config)
    : property_(std::move(property)),
      prog_(MustCompile(property_)),
      config_(config),
      timers_([this](std::uint64_t slot, SimTime deadline) {
        OnTimerExpiry(static_cast<std::uint32_t>(slot), deadline);
      }) {
  const std::string err = property_.Validate();
  SWMON_ASSERT_MSG(err.empty(), err.c_str());
  interest_ = prog_.interest;
  stride_ = kWVars + static_cast<std::uint32_t>(prog_.num_vars());
  stores_.resize(prog_.num_stages());
  scratch_vars_.resize(prog_.num_vars());
  ecfg_ = config_.EffectiveEviction();
  eviction_.Configure(ecfg_, prog_.num_vars());
  evict_enabled_ = eviction_.enabled();
  InitFailFast();
  InitProbeSites();
}

CompiledEngine::CompiledEngine(Property property, Program program,
                               MonitorConfig config)
    : property_(std::move(property)),
      prog_(std::move(program)),
      config_(config),
      timers_([this](std::uint64_t slot, SimTime deadline) {
        OnTimerExpiry(static_cast<std::uint32_t>(slot), deadline);
      }) {
  const std::string err = property_.Validate();
  SWMON_ASSERT_MSG(err.empty(), err.c_str());
  interest_ = prog_.interest;
  stride_ = kWVars + static_cast<std::uint32_t>(prog_.num_vars());
  stores_.resize(prog_.num_stages());
  scratch_vars_.resize(prog_.num_vars());
  ecfg_ = config_.EffectiveEviction();
  eviction_.Configure(ecfg_, prog_.num_vars());
  evict_enabled_ = eviction_.enabled();
  InitFailFast();
  InitProbeSites();
}

void CompiledEngine::InitFailFast() {
  const Instr& first = prog_.code[prog_.stages[0].pattern.begin];
  if (first.op == Op::kCondConstEq || first.op == Op::kCondConstNe) {
    st0_fast_valid_ = true;
    st0_fast_ = first;
    st0_fast_whole_ =
        prog_.code[prog_.stages[0].pattern.begin + 1].op == Op::kMatch;
  }
  // Required-presence masks: a pattern run is a straight-line conjunction
  // up to kForbidden/kMatch, and a required condition without
  // kFlagAllowAbsent fails outright when its field is absent — so an event
  // missing any such field provably fails ExecMatch, with no probe, no
  // counter, and no bind. (Forbidden-group conditions are excluded: an
  // absent field there makes the group NOT hold, which lets the pattern
  // match.) kCondVar* fields are included — in the contexts the fold
  // guards (stage-0 create, suppressors) the env is empty, so those
  // conditions need the field present to even be evaluated.
  const auto need_presence = [this](const PatternCode& p) {
    std::uint64_t need = 0;
    for (const Instr* ip = prog_.code.data() + p.begin;
         ip->op == Op::kCondConstEq || ip->op == Op::kCondConstNe ||
         ip->op == Op::kCondVarEq || ip->op == Op::kCondVarNe;
         ++ip) {
      if (!(ip->flags & kFlagAllowAbsent)) need |= std::uint64_t{1} << ip->field;
    }
    return need;
  };
  st0_need_ = need_presence(prog_.stages[0].pattern);
  sup_guards_.clear();
  for (const SuppressorCode& sup : prog_.suppressors)
    sup_guards_.push_back(
        SupGuard{sup.pattern.event_type, need_presence(sup.pattern)});
}

// ------------------------------------------------------------- execution

bool CompiledEngine::EvalCond(const Instr& i, const FieldMap& fields,
                              const std::uint64_t* vars,
                              std::uint64_t bound) const {
  const auto f = static_cast<FieldId>(i.field);
  if (!fields.Has(f)) return (i.flags & kFlagAllowAbsent) != 0;
  const std::uint64_t lhs = fields.GetUnchecked(f);
  std::uint64_t rhs;
  if (i.op == Op::kCondConstEq || i.op == Op::kCondConstNe) {
    rhs = i.imm;
  } else {
    if (!(bound >> i.var & 1)) return false;  // unbound vars never hold
    rhs = vars[i.var];
  }
  const bool eq = ((lhs ^ rhs) & i.mask) == 0;
  return (i.op == Op::kCondConstEq || i.op == Op::kCondVarEq) ? eq : !eq;
}

bool CompiledEngine::ExecMatch(std::uint32_t pc, const FieldMap& fields,
                               const std::uint64_t* vars,
                               std::uint64_t bound) const {
  const Instr* ip = prog_.code.data() + pc;
#if defined(__GNUC__) && !defined(SWMON_NO_COMPUTED_GOTO)
  // Label table indexed by Op; bind opcodes never appear in a pattern run.
  static const void* const kJump[] = {
      &&op_cond_const_eq, &&op_cond_const_ne, &&op_cond_var_eq,
      &&op_cond_var_ne,   &&op_forbidden,     &&op_match,
      &&op_unreachable,   &&op_unreachable,   &&op_unreachable,
      &&op_unreachable,   &&op_unreachable,
  };
#define SWMON_DISPATCH() goto* kJump[static_cast<std::size_t>(ip->op)]
  SWMON_DISPATCH();
op_cond_const_eq: {
  const auto f = static_cast<FieldId>(ip->field);
  if (!fields.Has(f)) {
    if (!(ip->flags & kFlagAllowAbsent)) return false;
  } else if (((fields.GetUnchecked(f) ^ ip->imm) & ip->mask) != 0) {
    return false;
  }
  ++ip;
  SWMON_DISPATCH();
}
op_cond_const_ne: {
  const auto f = static_cast<FieldId>(ip->field);
  if (!fields.Has(f)) {
    if (!(ip->flags & kFlagAllowAbsent)) return false;
  } else if (((fields.GetUnchecked(f) ^ ip->imm) & ip->mask) == 0) {
    return false;
  }
  ++ip;
  SWMON_DISPATCH();
}
op_cond_var_eq: {
  const auto f = static_cast<FieldId>(ip->field);
  if (!fields.Has(f)) {
    if (!(ip->flags & kFlagAllowAbsent)) return false;
  } else {
    if (!(bound >> ip->var & 1)) return false;
    if (((fields.GetUnchecked(f) ^ vars[ip->var]) & ip->mask) != 0)
      return false;
  }
  ++ip;
  SWMON_DISPATCH();
}
op_cond_var_ne: {
  const auto f = static_cast<FieldId>(ip->field);
  if (!fields.Has(f)) {
    if (!(ip->flags & kFlagAllowAbsent)) return false;
  } else {
    if (!(bound >> ip->var & 1)) return false;
    if (((fields.GetUnchecked(f) ^ vars[ip->var]) & ip->mask) == 0)
      return false;
  }
  ++ip;
  SWMON_DISPATCH();
}
op_forbidden: {
  const Instr* fi = ip + 1;
  bool all_hold = true;
  for (unsigned n = ip->aux; n-- > 0; ++fi) {
    if (!EvalCond(*fi, fields, vars, bound)) {
      all_hold = false;
      break;
    }
  }
  return !all_hold;  // kMatch is the next live instruction either way
}
op_match:
  return true;
op_unreachable:
  SWMON_ASSERT_MSG(false, "bind opcode in pattern run");
  return false;
#undef SWMON_DISPATCH
#else
  for (;; ++ip) {
    switch (ip->op) {
      case Op::kCondConstEq:
      case Op::kCondConstNe:
      case Op::kCondVarEq:
      case Op::kCondVarNe:
        if (!EvalCond(*ip, fields, vars, bound)) return false;
        break;
      case Op::kForbidden: {
        const Instr* fi = ip + 1;
        bool all_hold = true;
        for (unsigned n = ip->aux; n-- > 0; ++fi) {
          if (!EvalCond(*fi, fields, vars, bound)) {
            all_hold = false;
            break;
          }
        }
        return !all_hold;
      }
      case Op::kMatch:
        return true;
      default:
        SWMON_ASSERT_MSG(false, "bind opcode in pattern run");
        return false;
    }
  }
#endif
}

namespace {
constexpr std::uint32_t kBindFail = 0xffffffffu;
}

/// Walks the kRequireField prefix of a bind run. Returns the pc of the
/// first mutating instruction, or kBindFail when a required field is
/// absent — callers unfile the instance under the OLD env between this
/// check and ExecBindCommit (the re-key contract; see engine.cpp's
/// RunAdvancePass).
static std::uint32_t ExecRequire(const Program& prog, std::uint32_t pc,
                                 const FieldMap& fields) {
  const Instr* ip = prog.code.data() + pc;
  while (ip->op == Op::kRequireField) {
    if (!fields.Has(static_cast<FieldId>(ip->field))) return kBindFail;
    ++ip;
  }
  return static_cast<std::uint32_t>(ip - prog.code.data());
}

bool CompiledEngine::ExecBind(std::uint32_t pc, const FieldMap& fields,
                              std::uint64_t* vars, std::uint64_t& bound) {
  const std::uint32_t body = ExecRequire(prog_, pc, fields);
  if (body == kBindFail) return false;
  for (const Instr* ip = prog_.code.data() + body;; ++ip) {
    switch (ip->op) {
      case Op::kBindField:
        vars[ip->var] = fields.GetUnchecked(static_cast<FieldId>(ip->field));
        bound |= std::uint64_t{1} << ip->var;
        break;
      case Op::kBindHash: {
        std::uint64_t h = 0xcbf29ce484222325ULL;  // HashFieldsToRange
        const std::uint16_t* in = prog_.aux_fields.data() + ip->aux_pos;
        for (unsigned n = 0; n < ip->aux; ++n) {
          h ^= fields.GetUnchecked(static_cast<FieldId>(in[n]));
          h *= 0x100000001b3ULL;
          h ^= h >> 29;
        }
        vars[ip->var] = h % ip->modulus + ip->base;
        bound |= std::uint64_t{1} << ip->var;
        break;
      }
      case Op::kBindRoundRobin:
        vars[ip->var] = rr_counter_++ % ip->modulus + ip->base;
        bound |= std::uint64_t{1} << ip->var;
        break;
      default:  // kBindEnd
        return true;
    }
  }
}

// ------------------------------------------------------------------ stores

std::uint32_t CompiledEngine::AllocSlot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(slab_.size() / stride_);
  slab_.resize(slab_.size() + stride_);
  return slot;
}

void CompiledEngine::InsertIntoStore(std::uint32_t slot) {
  std::uint64_t* rec = Rec(slot);
  const std::uint32_t stage = StageOf(rec);
  SWMON_ASSERT(stage >= 1 && stage < prog_.num_stages());
  StageStore& store = stores_[stage];
  const StageCode& sc = prog_.stages[stage];
  if (sc.link_count != 0) {
    const std::uint64_t bound = rec[kWBound];
    key_buf_.clear();
    bool all_bound = true;
    for (std::uint32_t i = 0; i < sc.link_count; ++i) {
      const LinkTerm& lt = prog_.links[sc.link_begin + i];
      if (!(bound >> lt.var & 1)) {
        all_bound = false;
        break;
      }
      key_buf_.push_back(rec[kWVars + lt.var]);
    }
    if (all_bound) {
      const std::uint32_t cell = store.keyed.Insert(
          key_buf_.data(), static_cast<std::uint32_t>(key_buf_.size()));
      store.keyed.slots(cell).push_back(slot);
      return;
    }
  }
  store.scan.push_back(slot);
}

namespace {
/// Swap-remove, exactly the interpreter's bucket-erase: order of the
/// remaining slots is part of the candidate-enumeration contract.
bool EraseSlot(std::vector<std::uint32_t>& v, std::uint32_t slot) {
  auto it = std::find(v.begin(), v.end(), slot);
  if (it == v.end()) return false;
  *it = v.back();
  v.pop_back();
  return true;
}
}  // namespace

void CompiledEngine::RemoveFromStore(std::uint32_t slot) {
  const std::uint64_t* rec = Rec(slot);
  const std::uint32_t stage = StageOf(rec);
  if (stage < 1 || stage >= prog_.num_stages()) return;
  StageStore& store = stores_[stage];
  const StageCode& sc = prog_.stages[stage];
  if (sc.link_count != 0) {
    const std::uint64_t bound = rec[kWBound];
    key_buf_.clear();
    bool all_bound = true;
    for (std::uint32_t i = 0; i < sc.link_count; ++i) {
      const LinkTerm& lt = prog_.links[sc.link_begin + i];
      if (!(bound >> lt.var & 1)) {
        all_bound = false;
        break;
      }
      key_buf_.push_back(rec[kWVars + lt.var]);
    }
    if (all_bound) {
      const std::uint32_t cell = store.keyed.Find(
          key_buf_.data(), static_cast<std::uint32_t>(key_buf_.size()));
      if (cell != OpenMap::kNone) {
        EraseSlot(store.keyed.slots(cell), slot);
        if (store.keyed.slots(cell).empty()) store.keyed.EraseAt(cell);
      }
      return;
    }
  }
  EraseSlot(store.scan, slot);
}

void CompiledEngine::BuildStage0Key(const std::uint64_t* vars) {
  key_buf_.clear();
  for (const std::uint16_t v : prog_.stage0_vars) key_buf_.push_back(vars[v]);
}

// -------------------------------------------------------------- lifecycle

void CompiledEngine::ArmWindow(std::uint32_t slot, const StageCode& completed,
                               const DataplaneEvent* ev) {
  std::int64_t window_ns = completed.window_ns;
  if (completed.window_field >= 0 && ev != nullptr) {
    // Presence was verified by the bind run's kRequireField prefix.
    window_ns = Duration::Seconds(static_cast<std::int64_t>(
                    ev->fields.GetUnchecked(
                        static_cast<FieldId>(completed.window_field))))
                    .nanos();
  }
  if (window_ns > 0) {
    // Ordinal = instance id (NOT the slot): deadline ties must fire in id
    // order in both engines and in every shard replica (timer_set.hpp).
    const SimTime deadline = now_ + Duration::Nanos(window_ns);
    timers_.Arm(slot, deadline, Rec(slot)[kWId]);
    if (evict_enabled_)
      eviction_.OnDeadline(Rec(slot)[kWId],
                           static_cast<std::uint64_t>(deadline.nanos()));
  } else {
    timers_.Cancel(slot);
    if (evict_enabled_)
      eviction_.OnDeadline(Rec(slot)[kWId], EvictionState::kNoDeadline);
  }
}

void CompiledEngine::ReportViolation(const std::uint64_t* rec, SimTime when,
                                     const std::string& trigger,
                                     std::uint32_t trigger_stage_index) {
  Violation v;
  v.property = prog_.name;
  v.time = when;
  v.instance_id = rec[kWId];
  v.trigger_stage = trigger;
  v.trigger_stage_index = trigger_stage_index;
  if (config_.provenance >= ProvenanceLevel::kLimited) {
    const std::uint64_t bound = rec[kWBound];
    for (std::size_t i = 0; i < prog_.num_vars(); ++i) {
      if (bound >> i & 1)
        v.bindings.emplace_back(prog_.vars[i], rec[kWVars + i]);
    }
  }
  SWMON_LOG_INFO("monitor", "%s", v.ToString().c_str());
  violations_.push_back(std::move(v));
  ++stats_.violations;
}

void CompiledEngine::DestroyInstance(std::uint32_t slot) {
  std::uint64_t* rec = Rec(slot);
  RemoveFromStore(slot);
  // Live records always have every stage-0 variable bound (they were bound
  // by stage 0's bind run at creation and vars are never unbound).
  BuildStage0Key(rec + kWVars);
  const std::uint32_t cell = stage0_index_.Find(
      key_buf_.data(), static_cast<std::uint32_t>(key_buf_.size()));
  if (cell != OpenMap::kNone) {
    // Order-preserving erase, like the interpreter's std::erase — the
    // stage-0 bucket's order drives refresh iteration.
    auto& slots = stage0_index_.slots(cell);
    slots.erase(std::remove(slots.begin(), slots.end(), slot), slots.end());
    if (slots.empty()) stage0_index_.EraseAt(cell);
  }
  timers_.Cancel(slot);
  SetStageMatch(rec, kDeadStage, 0);
  free_slots_.push_back(slot);
  --live_count_;
  if (evict_enabled_) eviction_.OnDestroy(rec[kWId]);
}

void CompiledEngine::AdvanceInstance(std::uint32_t slot,
                                     const DataplaneEvent* ev) {
  // Caller verified the match, committed env updates, and unfiled the
  // record from its stage store under the pre-update env.
  std::uint64_t* rec = Rec(slot);
  const std::uint32_t stage = StageOf(rec);
  const StageCode& completed = prog_.stages[stage];
  SetStageMatch(rec, stage + 1, 0);
  if (stage + 1 == prog_.num_stages()) {
    ReportViolation(rec, now_, completed.label, stage);
    DestroyInstance(slot);
    return;
  }
  ArmWindow(slot, completed, ev);
  InsertIntoStore(slot);
}

void CompiledEngine::OnTimerExpiry(std::uint32_t slot, SimTime deadline) {
  std::uint64_t* rec = Rec(slot);
  const std::uint32_t stage = StageOf(rec);
  if (stage == kDeadStage) return;  // defensive; Cancel precedes slot reuse
  now_ = std::max(now_, deadline);
  if (stage < prog_.num_stages() &&
      prog_.stages[stage].kind == StageKind::kTimeout) {
    // Feature 7: the elapsed window IS the observation.
    ++stats_.timeout_observations;
    ++stats_.instances_advanced;
    RemoveFromStore(slot);  // env is unchanged, so the filed key is current
    AdvanceInstance(slot, nullptr);
  } else {
    // Feature 3: the window lapsed before the next observation.
    ++stats_.instances_expired;
    DestroyInstance(slot);
  }
}

void CompiledEngine::EvictIfNeeded() {
  if (!evict_enabled_) return;
  while (live_count_ > eviction_.cap()) {
    const EvictionState::Victim victim = eviction_.PickVictim();
    DestroyInstance(static_cast<std::uint32_t>(victim.handle));
    ++stats_.instances_evicted;
    if (eviction_.bytes_bound())
      ++evictions_bytes_;
    else
      ++evictions_capacity_;
  }
}

// ------------------------------------------------------------- event path

void CompiledEngine::AdvanceTime(SimTime now) {
  if (now <= now_) return;
  // Skip the out-of-line heap walk entirely when nothing is armed — for
  // windowless properties this is every single event.
  if (timers_.heap_size() != 0) timers_.Advance(now);
  now_ = now;
}

void CompiledEngine::ProcessEvent(const DataplaneEvent& event) {
  ++event_seq_;
  ++stats_.events;
  AdvanceTime(event.time);
  RunPasses(event, ~std::uint64_t{0});
}

void CompiledEngine::ProcessShardedEvent(const DataplaneEvent& event,
                                         std::uint64_t stage_mask,
                                         bool count) {
  // Restricted mirror of ProcessEvent (see engine.cpp): exactly one replica
  // per event counts it, and the driver already advanced time so the
  // AdvanceTime here is a monotonicity no-op for normal sharded delivery.
  ++event_seq_;
  if (count) {
    ++stats_.events;
    ++stats_.events_dispatched;
  }
  AdvanceTime(event.time);
  RunPasses(event, stage_mask);
}

// ---------------------------------------------------------- batch execution

void CompiledEngine::InitProbeSites() {
  // Every OpenMap probe whose key is a pure projection of event fields gets
  // a site: its hash can be computed in the batch hash pass (pass 1) — or
  // adopted from the owner's fused-key table — and consumed via FindHashed.
  // Sites are capped at 8 key words (nothing in the catalog comes close);
  // a wider site simply stays on the scalar hash-at-probe path.
  sites_.clear();
  site_of_stage_.assign(prog_.num_stages(), kNoSite);
  site_stage0_ = kNoSite;
  site_suppression_ = kNoSite;
  const auto add = [this](ProbeSite::Kind kind, std::uint32_t stage,
                          std::vector<std::uint16_t> fields,
                          EventTypeMask types) -> std::uint32_t {
    if (fields.size() > 8) return kNoSite;
    ProbeSite s;
    s.kind = kind;
    s.stage = stage;
    s.presence = 0;
    for (const std::uint16_t f : fields) s.presence |= std::uint64_t{1} << f;
    s.fields = std::move(fields);
    s.types = types;
    sites_.push_back(std::move(s));
    return static_cast<std::uint32_t>(sites_.size() - 1);
  };
  // Stage-0 index and suppression set are probed only inside
  // RunCreatePass, which is entered only for events matching stage 0's
  // pattern type (RunPasses' fail-fast mirrors the same check).
  const PatternCode& p0 = prog_.stages[0].pattern;
  const EventTypeMask create_types =
      p0.event_type >= 0
          ? EventTypeBit(static_cast<DataplaneEventType>(p0.event_type))
          : prog_.interest;
  if (prog_.stage0_key_pure)
    site_stage0_ =
        add(ProbeSite::kStage0, 0, prog_.stage0_key_fields, create_types);
  if (prog_.suppression_key_count != 0) {
    std::vector<std::uint16_t> f(
        prog_.key_fields.begin() + prog_.suppression_key_begin,
        prog_.key_fields.begin() + prog_.suppression_key_begin +
            prog_.suppression_key_count);
    site_suppression_ =
        add(ProbeSite::kSuppression, 0, std::move(f), create_types);
  }
  for (std::uint32_t k = 1; k < prog_.num_stages(); ++k) {
    const StageCode& st = prog_.stages[k];
    if (st.link_count == 0) continue;
    // A stage's keyed store is hash-probed only by the advance pass
    // (aborts walk the store), so the consuming types are exactly the
    // ones whose advance mask includes this stage.
    EventTypeMask types = 0;
    for (std::size_t t = 0; t < kNumDataplaneEventTypes; ++t)
      if (prog_.advance_stage_mask[t] >> k & 1)
        types |= EventTypeBit(static_cast<DataplaneEventType>(t));
    std::vector<std::uint16_t> f;
    f.reserve(st.link_count);
    for (std::uint32_t i = 0; i < st.link_count; ++i)
      f.push_back(prog_.links[st.link_begin + i].field);
    site_of_stage_[k] = add(ProbeSite::kLink, k, std::move(f), types);
  }
}

std::vector<ProbeKeyTuple> CompiledEngine::ProbeKeyTuples() const {
  // Stage-0 and suppression probes sit behind RunPasses' stage-0 fail-fast:
  // an event failing the pattern's leading constant condition can never
  // reach them, so that condition is exported as the tuples' reachability
  // gate and the hash pass skips such events. Link sites carry no gate —
  // their reachability (a live instance at the stage) is per-batch state,
  // reported via MarkConsumableFusedSlots instead.
  KeyConstFilter create_gate;
  if (st0_fast_valid_) {
    create_gate.valid = true;
    create_gate.negate = st0_fast_.op != Op::kCondConstEq;
    create_gate.pass_if_absent = (st0_fast_.flags & kFlagAllowAbsent) != 0;
    create_gate.field = st0_fast_.field;
    create_gate.mask = st0_fast_.mask;
    create_gate.imm = st0_fast_.imm;
  }
  std::vector<ProbeKeyTuple> out;
  out.reserve(sites_.size());
  for (const ProbeSite& s : sites_) {
    ProbeKeyTuple t{s.fields, s.types, {}};
    if (s.kind != ProbeSite::kLink) t.filter = create_gate;
    out.push_back(std::move(t));
  }
  return out;
}

void CompiledEngine::MarkConsumableFusedSlots(std::uint8_t* want) const {
  if (fused_slots_.size() != sites_.size()) return;  // not bound to an owner
  for (std::size_t s = 0; s < sites_.size(); ++s)
    if (SiteConsumable(sites_[s])) want[fused_slots_[s]] = 1;
}

const OpenMap& CompiledEngine::SiteMap(const ProbeSite& s) const {
  switch (s.kind) {
    case ProbeSite::kStage0:
      return stage0_index_;
    case ProbeSite::kSuppression:
      return suppressed_;
    default:
      return stores_[s.stage].keyed;
  }
}

void CompiledEngine::BeginBatch(const DataplaneEvent* events, std::size_t count,
                                const FusedKeyTable* fused) {
  batch_events_ = events;
  batch_count_ = count;
  batch_i_ = 0;
  batch_active_ = true;
  const std::size_t n = sites_.size();
  site_rows_.assign(n, nullptr);
  site_valid_.assign(n, nullptr);
  pf_sites_.clear();
  if (n == 0) return;
  if (fused != nullptr && fused_slots_.size() == n) {
    // The owner already fused and hashed this batch's keys (one row per
    // unique field tuple across ALL its engines) — just adopt the rows.
    for (std::size_t s = 0; s < n; ++s) {
      site_rows_[s] = fused->row(fused_slots_[s]);
      site_valid_[s] = fused->valid(fused_slots_[s]);
      if (SiteConsumable(sites_[s]))
        pf_sites_.push_back(static_cast<std::uint32_t>(s));
    }
    return;
  }
  // Pass 1, the key-extraction/hash pass: one straight-line sweep computing
  // each event's probe hashes before any probing starts. Every gate below
  // is advisory (an invalid entry hashes inline at the probe — SiteHash),
  // so the pass mirrors the scalar path's own work-avoidance: link sites
  // with no live instances are skipped wholesale, and stage-0/suppression
  // sites skip events the stage-0 fail-fast would reject.
  own_rows_.resize(n * count);
  own_valid_.resize(n * count);
  std::uint64_t key[8];
  bool any_create_site = false;
  for (std::size_t s = 0; s < n; ++s) {
    if (!SiteConsumable(sites_[s])) continue;  // rows stay nullptr
    site_rows_[s] = own_rows_.data() + s * count;
    site_valid_[s] = own_valid_.data() + s * count;
    pf_sites_.push_back(static_cast<std::uint32_t>(s));
    if (sites_[s].kind != ProbeSite::kLink) any_create_site = true;
  }
  if (pf_sites_.empty()) return;
  for (std::size_t i = 0; i < count; ++i) {
    const FieldMap& fields = events[i].fields;
    const std::uint64_t present = fields.presence_mask();
    const EventTypeMask tbit = EventTypeBit(events[i].type);
    // The stage-0 fail-fast, evaluated once per event for every
    // stage-0-rooted site (RunPasses re-checks it before RunCreatePass, so
    // a skipped event's rows are provably never consumed).
    bool create_ok = true;
    if (any_create_site && st0_fast_valid_) {
      const auto f = static_cast<FieldId>(st0_fast_.field);
      if (!fields.Has(f)) {
        create_ok = (st0_fast_.flags & kFlagAllowAbsent) != 0;
      } else {
        const bool eq =
            ((fields.GetUnchecked(f) ^ st0_fast_.imm) & st0_fast_.mask) == 0;
        create_ok = st0_fast_.op == Op::kCondConstEq ? eq : !eq;
      }
    }
    for (const std::uint32_t s : pf_sites_) {
      const ProbeSite& site = sites_[s];
      const std::size_t at = s * count + i;
      if ((site.types & tbit) == 0 ||
          (present & site.presence) != site.presence ||
          (site.kind != ProbeSite::kLink && !create_ok)) {
        own_valid_[at] = 0;
        continue;
      }
      for (std::size_t k = 0; k < site.fields.size(); ++k)
        key[k] = fields.GetUnchecked(static_cast<FieldId>(site.fields[k]));
      own_rows_[at] =
          HashKeySpan(key, static_cast<std::uint32_t>(site.fields.size()));
      own_valid_[at] = 1;
    }
  }
}

void CompiledEngine::EndBatch() {
  batch_active_ = false;
  batch_events_ = nullptr;
  batch_count_ = 0;
}

void CompiledEngine::PrefetchAhead(std::size_t i) {
  // Pass 2, interleaved with execution: while event i runs, pull the probe
  // cells event i+D will hit toward the cache, and — closer in, where the
  // cell line is likely resident already — peek it to prefetch the packed
  // u64 slab record its first slot names. Both are advisory only: no
  // counter, no state, no observable difference from scalar execution.
  if (prefetch_dist_ == 0 || pf_sites_.empty()) return;
  const std::size_t far = i + prefetch_dist_;
  if (far < batch_count_) {
    for (const std::uint32_t s : pf_sites_) {
      if (site_rows_[s] == nullptr || site_valid_[s][far] == 0) continue;
      SiteMap(sites_[s]).Prefetch(site_rows_[s][far]);
    }
  }
  const std::size_t near = i + (prefetch_dist_ + 1) / 2;
  if (near < batch_count_) {
    for (const std::uint32_t s : pf_sites_) {
      if (sites_[s].kind == ProbeSite::kSuppression) continue;  // set: no slots
      if (site_rows_[s] == nullptr || site_valid_[s][near] == 0) continue;
      const std::uint32_t slot =
          SiteMap(sites_[s]).PeekFirstSlot(site_rows_[s][near]);
      if (slot != OpenMap::kNone) __builtin_prefetch(Rec(slot));
    }
  }
}

bool CompiledEngine::WouldEnterCreate(const DataplaneEvent& ev) const {
  const auto t = static_cast<std::size_t>(ev.type);
  const PatternCode& p0 = prog_.stages[0].pattern;
  if (p0.event_type >= 0 && static_cast<std::size_t>(p0.event_type) != t)
    return false;
  if ((ev.fields.presence_mask() & st0_need_) != st0_need_) return false;
  if (!st0_fast_valid_) return true;
  const auto f = static_cast<FieldId>(st0_fast_.field);
  if (!ev.fields.Has(f)) return (st0_fast_.flags & kFlagAllowAbsent) != 0;
  const bool eq =
      ((ev.fields.GetUnchecked(f) ^ st0_fast_.imm) & st0_fast_.mask) == 0;
  return st0_fast_.op == Op::kCondConstEq ? eq : !eq;
}

bool CompiledEngine::SuppressorsInert(const DataplaneEvent& ev) const {
  const auto t = static_cast<std::size_t>(ev.type);
  const std::uint64_t present = ev.fields.presence_mask();
  for (const SupGuard& g : sup_guards_) {
    if (g.event_type >= 0 && static_cast<std::size_t>(g.event_type) != t)
      continue;
    if ((present & g.need) != g.need) continue;
    return false;  // this suppressor's match could succeed and Insert
  }
  return true;
}

void CompiledEngine::ProcessEventBatch(const DataplaneEvent* events,
                                       std::size_t count,
                                       const FusedKeyTable* fused,
                                       BatchEventResult* results) {
  BeginBatch(events, count, fused);
  // With no live instances the abort/advance passes are no-ops, so for a
  // dispatched event only creation and the suppressor sweep can touch
  // state. An event that can't enter the create pass (WouldEnterCreate)
  // and can't feed any suppressor (SuppressorsInert) is then provably
  // inert: its whole effect is three counters and the clock, so runs of
  // such events fold the same way filtered runs do below. Timer pops with
  // live_count_ == 0 are stale pops and can't resurrect instances, so
  // live_count_ stays 0 across the folded AdvanceTime.
  const bool fold_dispatched = results == nullptr;
  for (std::size_t i = 0; i < count;) {
    const DataplaneEvent& ev = events[i];
    if (fold_dispatched && live_count_ == 0 &&
        ((interest_ >> static_cast<int>(ev.type)) & 1) != 0 &&
        !WouldEnterCreate(ev) && SuppressorsInert(ev)) {
      std::size_t j = i + 1;
      while (j < count &&
             ((interest_ >> static_cast<int>(events[j].type)) & 1) != 0 &&
             !WouldEnterCreate(events[j]) && SuppressorsInert(events[j]))
        ++j;
      const std::size_t n = j - i;
      stats_.events += n;
      stats_.events_dispatched += n;
      event_seq_ += n;
      AdvanceTime(events[j - 1].time);
      i = j;
      continue;
    }
    if (((interest_ >> static_cast<int>(ev.type)) & 1) == 0 &&
        results == nullptr) {
      // A run of filtered events folds into one clock advance:
      // AdvanceTime(t1); AdvanceTime(t2) pops exactly the timers
      // AdvanceTime(t2) alone would, in the same deadline order, with
      // deadline-derived timestamps — so skipping the intermediate calls
      // is unobservable. (With `results` the per-event violation marks
      // must still be captured, so the scalar-shaped path below runs.)
      std::size_t j = i + 1;
      while (j < count &&
             ((interest_ >> static_cast<int>(events[j].type)) & 1) == 0)
        ++j;
      stats_.events_filtered += j - i;
      AdvanceTime(events[j - 1].time);
      i = j;
      continue;
    }
    batch_i_ = i;
    PrefetchAhead(i);
    if ((interest_ >> static_cast<int>(ev.type)) & 1) {
      // ProcessDispatchedEvent, inlined (pass 3 runs the unchanged scalar
      // passes — exact serial order within the batch).
      ++stats_.events_dispatched;
      ++event_seq_;
      ++stats_.events;
      AdvanceTime(ev.time);
      RunPasses(ev, ~std::uint64_t{0});
    } else {
      // NoteFilteredEvent, inlined.
      ++stats_.events_filtered;
      AdvanceTime(ev.time);
    }
    if (results != nullptr) {
      BatchEventResult& r = results[i];
      r.violations_after = static_cast<std::uint32_t>(violations_.size());
      r.violations_clock = r.violations_after;
      r.live_after = static_cast<std::uint32_t>(live_count_);
      r.created_after = stats_.instances_created;
    }
    ++i;
  }
  EndBatch();
}

void CompiledEngine::ProcessShardedBatch(const DataplaneEvent* events,
                                         std::size_t count,
                                         const ShardedBatchOp* ops,
                                         const FusedKeyTable* fused,
                                         BatchEventResult* results) {
  BeginBatch(events, count, fused);
  for (std::size_t i = 0; i < count; ++i) {
    batch_i_ = i;
    PrefetchAhead(i);
    const DataplaneEvent& ev = events[i];
    const ShardedBatchOp& op = ops[i];
    // Mirror of the scalar worker loop: clock first (NoteFilteredEvent on
    // the replica that accounts the event as filtered), capture the
    // phase-0 violation mark, then the sharded passes.
    if (op.filtered) ++stats_.events_filtered;
    AdvanceTime(ev.time);
    if (results != nullptr)
      results[i].violations_clock =
          static_cast<std::uint32_t>(violations_.size());
    if (op.stage_mask != 0) {
      ++event_seq_;
      if (op.count) {
        ++stats_.events;
        ++stats_.events_dispatched;
      }
      RunPasses(ev, op.stage_mask);
    }
    if (results != nullptr) {
      BatchEventResult& r = results[i];
      r.violations_after = static_cast<std::uint32_t>(violations_.size());
      r.live_after = static_cast<std::uint32_t>(live_count_);
      r.created_after = stats_.instances_created;
    }
  }
  EndBatch();
}

void CompiledEngine::RunPasses(const DataplaneEvent& event,
                               std::uint64_t stage_mask) {
  const auto t = static_cast<std::size_t>(event.type);
  if (live_count_ != 0) {
    const std::uint64_t abort_mask = prog_.abort_stage_mask[t] & stage_mask;
    if (abort_mask != 0) RunAbortPass(event, abort_mask);
  }
  if (live_count_ != 0) {
    const std::uint64_t advance_mask =
        prog_.advance_stage_mask[t] & stage_mask;
    if (advance_mask != 0) RunAdvancePass(event, advance_mask);
  }
  if (!(stage_mask & 1)) return;  // create + suppressor belong to stage 0
  // Stage-0 fail-fast: the type check plus the pattern's leading constant
  // condition, evaluated inline. Exactly the first steps RunCreatePass
  // would take (it touches no state before its ExecMatch), so skipping
  // the call on failure is unobservable.
  const PatternCode& p0 = prog_.stages[0].pattern;
  bool enter_create = p0.event_type < 0 ||
                      static_cast<std::size_t>(p0.event_type) == t;
  if (enter_create && st0_fast_valid_) {
    const auto f = static_cast<FieldId>(st0_fast_.field);
    if (!event.fields.Has(f)) {
      enter_create = (st0_fast_.flags & kFlagAllowAbsent) != 0;
    } else {
      const bool eq =
          ((event.fields.GetUnchecked(f) ^ st0_fast_.imm) & st0_fast_.mask) ==
          0;
      enter_create = st0_fast_.op == Op::kCondConstEq ? eq : !eq;
    }
  }
  if (enter_create) RunCreatePass(event);
  if (!prog_.suppressors.empty()) RunSuppressorPass(event);
  if (live_count_ > stats_.peak_live) stats_.peak_live = live_count_;
}

void CompiledEngine::RunAbortPass(const DataplaneEvent& ev,
                                  std::uint64_t stage_mask) {
  const auto t = static_cast<std::size_t>(ev.type);
  for (std::size_t k = 1; k < prog_.num_stages(); ++k) {
    if (!(stage_mask >> k & 1)) continue;
    const StageCode& st = prog_.stages[k];
    victims_.clear();
    const auto consider = [&](std::uint32_t slot) {
      const std::uint64_t* rec = Rec(slot);
      if (StageOf(rec) != k) return;
      ++stats_.candidate_checks;
      for (const PatternCode& a : st.aborts) {
        if (a.event_type >= 0 && static_cast<std::size_t>(a.event_type) != t)
          continue;
        if (ExecMatch(a.begin, ev.fields, rec + kWVars, rec[kWBound])) {
          victims_.push_back(EvictionEntry{rec[kWId], slot});
          return;
        }
      }
    };
    const StageStore& store = stores_[k];
    store.keyed.ForEach([&](const std::vector<std::uint32_t>& slots) {
      for (const std::uint32_t slot : slots) consider(slot);
    });
    for (const std::uint32_t slot : store.scan) consider(slot);

    // Sorted by instance id — the engine-independent destruction order
    // both engines commit to (see engine.cpp's RunAbortPass).
    std::sort(victims_.begin(), victims_.end(),
              [](const EvictionEntry& a, const EvictionEntry& b) {
                return a.id < b.id;
              });
    for (const EvictionEntry& v : victims_) {
      DestroyInstance(v.slot);
      ++stats_.instances_aborted;
    }
  }
}

void CompiledEngine::RunAdvancePass(const DataplaneEvent& ev,
                                    std::uint64_t stage_mask) {
  // Highest stage first so an instance advanced into stage k+1 is not
  // examined again there by the same event.
  for (std::size_t k = prog_.num_stages(); k-- > 1;) {
    if (!(stage_mask >> k & 1)) continue;
    const StageCode& st = prog_.stages[k];
    StageStore& store = stores_[k];

    cand_.clear();
    if (st.link_count != 0) {
      // Link-key lookup. In batch mode the site's hash may have been
      // precomputed by the hash pass; when it wasn't (scalar delivery, a
      // key field absent, or the pass's advisory gates skipped the event)
      // the key is built and hashed right here, identically either way.
      std::uint32_t cell = OpenMap::kNone;
      std::uint64_t h;
      if (SiteHash(site_of_stage_[k], &h)) {
        key_buf_.clear();
        for (std::uint32_t i = 0; i < st.link_count; ++i)
          key_buf_.push_back(ev.fields.GetUnchecked(
              static_cast<FieldId>(prog_.links[st.link_begin + i].field)));
        cell = store.keyed.FindHashed(
            h, key_buf_.data(), static_cast<std::uint32_t>(key_buf_.size()));
      } else {
        key_buf_.clear();
        bool projectable = true;
        for (std::uint32_t i = 0; i < st.link_count; ++i) {
          const auto f =
              static_cast<FieldId>(prog_.links[st.link_begin + i].field);
          if (!ev.fields.Has(f)) {
            projectable = false;
            break;
          }
          key_buf_.push_back(ev.fields.GetUnchecked(f));
        }
        if (projectable)
          cell = store.keyed.Find(
              key_buf_.data(), static_cast<std::uint32_t>(key_buf_.size()));
      }
      if (cell != OpenMap::kNone) {
        const auto& slots = store.keyed.slots(cell);
        cand_.insert(cand_.end(), slots.begin(), slots.end());
      }
      cand_.insert(cand_.end(), store.scan.begin(), store.scan.end());
    } else {
      // Multiple match (Feature 8): every instance at this stage is a
      // candidate. Unlinked stages only ever file into scan.
      cand_.insert(cand_.end(), store.scan.begin(), store.scan.end());
    }

    for (const std::uint32_t slot : cand_) {
      std::uint64_t* rec = Rec(slot);
      if (StageOf(rec) != k || rec[kWSeq] == event_seq_) continue;
      ++stats_.candidate_checks;
      if (!ExecMatch(st.pattern.begin, ev.fields, rec + kWVars, rec[kWBound]))
        continue;
      // The bind run's presence checks are the only way it can fail; run
      // them first so the unfile-under-old-env / mutate / re-file sequence
      // below can bind straight into the record.
      const std::uint32_t body = ExecRequire(prog_, st.bind_begin, ev.fields);
      if (body == kBindFail) continue;
      rec[kWSeq] = event_seq_;
      // LRU recency stamp — mirrors the interpreter's touch point exactly.
      if (evict_enabled_) eviction_.OnTouch(rec[kWId], event_seq_);
      const bool rebinds = st.has_bindings;
      if (rebinds) RemoveFromStore(slot);
      std::uint64_t bound = rec[kWBound];
      ExecBind(body, ev.fields, rec + kWVars, bound);
      rec[kWBound] = bound;
      const std::uint32_t matches = MatchesOf(rec) + 1;
      SetStageMatch(rec, static_cast<std::uint32_t>(k), matches);
      // Quantitative stages (extension): accumulate matches until the
      // stage's threshold before the observation counts as complete.
      if (matches < st.min_count) {
        if (rebinds) InsertIntoStore(slot);  // re-file under the new key
        continue;
      }
      if (!rebinds) RemoveFromStore(slot);
      ++stats_.instances_advanced;
      AdvanceInstance(slot, &ev);
    }
  }
}

void CompiledEngine::RunCreatePass(const DataplaneEvent& ev) {
  const StageCode& st0 = prog_.stages[0];
  if (st0.pattern.event_type >= 0 &&
      static_cast<std::size_t>(st0.pattern.event_type) !=
          static_cast<std::size_t>(ev.type))
    return;
  // ProcessEvent's fail-fast already proved the leading constant condition
  // when st0_fast_valid_ — resume the pattern run right after it, or skip
  // the run entirely when that condition was the whole pattern.
  if (!st0_fast_whole_) {
    const std::uint32_t pc = st0.pattern.begin + (st0_fast_valid_ ? 1 : 0);
    if (!ExecMatch(pc, ev.fields, scratch_vars_.data(), 0)) return;
  }

  // Suppression (negated-history preconditions). Batch mode consumes the
  // precomputed suppression-key hash when the hash pass produced one;
  // otherwise the key is hashed inline, scalar-identical.
  if (prog_.suppression_key_count != 0) {
    std::uint32_t cell = OpenMap::kNone;
    std::uint64_t h;
    if (SiteHash(site_suppression_, &h)) {
      key_buf_.clear();
      for (std::uint32_t i = 0; i < prog_.suppression_key_count; ++i)
        key_buf_.push_back(ev.fields.GetUnchecked(static_cast<FieldId>(
            prog_.key_fields[prog_.suppression_key_begin + i])));
      cell = suppressed_.FindHashed(
          h, key_buf_.data(), static_cast<std::uint32_t>(key_buf_.size()));
    } else {
      key_buf_.clear();
      bool all_present = true;
      for (std::uint32_t i = 0; i < prog_.suppression_key_count; ++i) {
        const auto f = static_cast<FieldId>(
            prog_.key_fields[prog_.suppression_key_begin + i]);
        if (!ev.fields.Has(f)) {
          all_present = false;
          break;
        }
        key_buf_.push_back(ev.fields.GetUnchecked(f));
      }
      if (all_present)
        cell = suppressed_.Find(key_buf_.data(),
                                static_cast<std::uint32_t>(key_buf_.size()));
    }
    if (cell != OpenMap::kNone) {
      ++stats_.suppressed_creations;
      return;
    }
  }

  // The dedup path below discards a *successful* bind — snapshot the
  // round-robin counter so a duplicate stage-0 match never consumes a
  // slot (see engine.cpp's RunCreatePass).
  const std::uint64_t rr_before = rr_counter_;
  std::uint64_t bound = 0;
  if (!ExecBind(st0.bind_begin, ev.fields, scratch_vars_.data(), bound))
    return;

  // Dedup / refresh (Feature 3's per-pair timer semantics). When stage 0's
  // key is pure (all kBindField), the routing hash was computed once in the
  // batch hash pass (fused across properties sharing the tuple); a row the
  // pass's advisory gates skipped just hashes here, scalar-identical.
  BuildStage0Key(scratch_vars_.data());
  const std::uint32_t key_len = static_cast<std::uint32_t>(key_buf_.size());
  std::uint64_t h0;
  const std::uint32_t dedup =
      SiteHash(site_stage0_, &h0)
          ? stage0_index_.FindHashed(h0, key_buf_.data(), key_len)
          : stage0_index_.Find(key_buf_.data(), key_len);
  if (dedup != OpenMap::kNone && !stage0_index_.slots(dedup).empty()) {
    rr_counter_ = rr_before;
    if (st0.refresh_on_rematch) {
      for (const std::uint32_t slot : stage0_index_.slots(dedup)) {
        if (StageOf(Rec(slot)) != 1) continue;
        ArmWindow(slot, st0, &ev);
        ++stats_.instances_refreshed;
        if (evict_enabled_) eviction_.OnTouch(Rec(slot)[kWId], event_seq_);
      }
    }
    return;  // an equivalent attempt is already live
  }

  const std::uint64_t id = next_instance_id_++;
  const std::uint32_t slot = AllocSlot();
  std::uint64_t* rec = Rec(slot);
  rec[kWId] = id;
  rec[kWCreated] = static_cast<std::uint64_t>(now_.nanos());
  rec[kWSeq] = event_seq_;
  SetStageMatch(rec, 0, 0);
  rec[kWBound] = bound;
  std::copy(scratch_vars_.begin(), scratch_vars_.end(), rec + kWVars);
  // AllocSlot may have grown the slab, but key_buf_ still holds the
  // stage-0 key built above.
  const std::uint32_t cell = stage0_index_.Insert(key_buf_.data(), key_len);
  stage0_index_.slots(cell).push_back(slot);
  if (evict_enabled_) eviction_.OnCreate(id, slot, event_seq_);
  ++stats_.instances_created;
  ++live_count_;
  AdvanceInstance(slot, &ev);  // commits stage 0 -> 1 (or violates if n==1)
  EvictIfNeeded();
}

void CompiledEngine::RunSuppressorPass(const DataplaneEvent& ev) {
  for (const SuppressorCode& sup : prog_.suppressors) {
    if (sup.pattern.event_type >= 0 &&
        static_cast<std::size_t>(sup.pattern.event_type) !=
            static_cast<std::size_t>(ev.type))
      continue;
    // Suppressor patterns evaluate under an empty environment.
    if (!ExecMatch(sup.pattern.begin, ev.fields, scratch_vars_.data(), 0))
      continue;
    key_buf_.clear();
    bool all_present = true;
    for (std::uint32_t i = 0; i < sup.key_count; ++i) {
      const auto f = static_cast<FieldId>(prog_.key_fields[sup.key_begin + i]);
      if (!ev.fields.Has(f)) {
        all_present = false;
        break;
      }
      key_buf_.push_back(ev.fields.GetUnchecked(f));
    }
    if (all_present)
      suppressed_.Insert(key_buf_.data(),
                         static_cast<std::uint32_t>(key_buf_.size()));
  }
}

// --------------------------------------------------------------- reporting

std::size_t CompiledEngine::StateBytes() const {
  std::size_t bytes = slab_.capacity() * sizeof(std::uint64_t) +
                      free_slots_.capacity() * sizeof(std::uint32_t) +
                      stage0_index_.MemoryBytes() + suppressed_.MemoryBytes();
  for (const StageStore& s : stores_)
    bytes += s.keyed.MemoryBytes() + s.scan.capacity() * sizeof(std::uint32_t);
  return bytes;
}

void CompiledEngine::CollectInto(telemetry::Snapshot& snap,
                                 std::string_view name) const {
  MonitorStats s = stats_;
  s.timers_armed = timers_.total_armed();
  s.timer_stale_pops = timers_.stale_popped();
  std::string prefix = "monitor.engine.";
  prefix.append(name);
  prefix += '.';
  const auto set = [&](const char* leaf, std::uint64_t v) {
    snap.SetCounter(prefix + leaf, v);
  };
  set("events", s.events);
  set("events_dispatched", s.events_dispatched);
  set("events_filtered", s.events_filtered);
  set("instances_created", s.instances_created);
  set("instances_refreshed", s.instances_refreshed);
  set("instances_advanced", s.instances_advanced);
  set("instances_expired", s.instances_expired);
  set("instances_aborted", s.instances_aborted);
  set("instances_evicted", s.instances_evicted);
  set("timeout_observations", s.timeout_observations);
  set("suppressed_creations", s.suppressed_creations);
  set("violations", s.violations);
  set("candidate_checks", s.candidate_checks);
  set("timers_armed", s.timers_armed);
  set("timer_stale_pops", s.timer_stale_pops);
  snap.SetGauge(prefix + "peak_live", static_cast<std::int64_t>(s.peak_live));
  snap.SetGauge(prefix + "live_instances",
                static_cast<std::int64_t>(live_count_));
  snap.SetGauge(prefix + "eviction_queue",
                static_cast<std::int64_t>(eviction_.QueueSize()));
  snap.SetGauge(prefix + "timers_pending",
                static_cast<std::int64_t>(timers_.armed_count()));
  // Engine-neutral modeled state bytes (see engine.cpp: the byte-cap model
  // doubles as the gauge so both engines publish identical values).
  snap.SetGauge(prefix + "state_bytes",
                static_cast<std::int64_t>(live_count_ *
                                          ModelInstanceBytes(prog_.num_vars())));
  if (evict_enabled_) {
    snap.SetCounter(prefix + "evictions.policy." +
                        EvictionPolicyName(ecfg_.policy),
                    s.instances_evicted);
    snap.SetCounter(prefix + "evictions.reason.capacity",
                    evictions_capacity_);
    snap.SetCounter(prefix + "evictions.reason.bytes", evictions_bytes_);
  }

  // OpenMap probe telemetry, aggregated over every index this engine owns
  // (stage-0 dedup, suppression set, per-stage link stores), published
  // under monitor.compiled.<name>.*. Deterministic for a given delivered
  // stream — batch and scalar execution produce identical values, which
  // batch_exec_test asserts; the interpreter publishes none of these
  // (tests that hold the engines' snapshots equal filter the prefix).
  OpenMap::ProbeStats agg;
  const auto acc = [&agg](const OpenMap& m) {
    const OpenMap::ProbeStats& p = m.probe_stats();
    agg.probes += p.probes;
    agg.probe_steps += p.probe_steps;
    agg.shortkey_hits += p.shortkey_hits;
    agg.shortkey_misses += p.shortkey_misses;
    for (std::size_t i = 0; i < 16; ++i) agg.probe_len[i] += p.probe_len[i];
  };
  acc(stage0_index_);
  acc(suppressed_);
  for (const StageStore& st : stores_) acc(st.keyed);
  std::string cprefix = "monitor.compiled.";
  cprefix.append(name);
  cprefix += '.';
  snap.SetCounter(cprefix + "probes", agg.probes);
  snap.SetCounter(cprefix + "probe_steps", agg.probe_steps);
  snap.SetCounter(cprefix + "shortkey_hits", agg.shortkey_hits);
  snap.SetCounter(cprefix + "shortkey_misses", agg.shortkey_misses);
  telemetry::HistogramData hist;
  hist.count = agg.probes;
  hist.sum = agg.probe_steps;
  hist.buckets.assign(agg.probe_len, agg.probe_len + 16);
  hist.TrimTrailingZeros();
  snap.SetHistogram(cprefix + "probe_len", hist);
}

}  // namespace swmon::compiled
