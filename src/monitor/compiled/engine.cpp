// CompiledEngine: bytecode execution over packed state records.
//
// Every pass is a line-for-line mirror of the corresponding
// MonitorEngine pass (engine.cpp) — same pass order, same candidate
// enumeration, same counter increments, same instance-id assignment —
// with the spec-tree walk replaced by the flat program and the
// per-instance heap objects replaced by slab records. When editing,
// change engine.cpp first and replicate here; the differential tests
// will catch any drift.

#include "monitor/compiled/engine.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace swmon::compiled {

// ---------------------------------------------------------------- OpenMap

std::uint32_t OpenMap::Find(const std::uint64_t* key,
                            std::uint32_t len) const {
  if (cells_.empty()) return kNone;
  const std::uint64_t h = HashKey(key, len);
  const std::size_t mask = cells_.size() - 1;
  for (std::size_t idx = h & mask;; idx = (idx + 1) & mask) {
    const Cell& c = cells_[idx];
    if (c.state == kEmpty) return kNone;
    if (c.state == kFull && KeyEquals(c, h, key, len))
      return static_cast<std::uint32_t>(idx);
  }
}

std::uint32_t OpenMap::Insert(const std::uint64_t* key, std::uint32_t len) {
  if (cells_.empty() || (used_ + 1) * 10 >= cells_.size() * 7) {
    Rehash(cells_.empty() ? 16 : cells_.size() * 2);
  } else if (dead_words_ > 64 && dead_words_ * 2 > pool_.size()) {
    // Same capacity, compacted pool: erases leave their key words behind
    // (and tombstone reuse appends without raising used_), so under pure
    // churn the pool would otherwise grow without ever tripping the
    // occupancy resize above.
    Rehash(cells_.size());
  }
  const std::uint64_t h = HashKey(key, len);
  const std::size_t mask = cells_.size() - 1;
  std::size_t tomb = static_cast<std::size_t>(-1);
  for (std::size_t idx = h & mask;; idx = (idx + 1) & mask) {
    Cell& c = cells_[idx];
    if (c.state == kFull) {
      if (KeyEquals(c, h, key, len)) return static_cast<std::uint32_t>(idx);
      continue;
    }
    if (c.state == kTombstone) {
      if (tomb == static_cast<std::size_t>(-1)) tomb = idx;
      continue;
    }
    const std::size_t target = tomb != static_cast<std::size_t>(-1) ? tomb : idx;
    Cell& tc = cells_[target];
    const bool reused_tomb = tc.state == kTombstone;
    tc.hash = h;
    tc.k01[0] = len > 0 ? key[0] : 0;
    tc.k01[1] = len > 1 ? key[1] : 0;
    tc.key_pos = static_cast<std::uint32_t>(pool_.size());
    tc.key_len = static_cast<std::uint16_t>(len);
    tc.state = kFull;
    pool_.insert(pool_.end(), key, key + len);
    ++size_;
    if (!reused_tomb) ++used_;
    return static_cast<std::uint32_t>(target);
  }
}

void OpenMap::EraseAt(std::uint32_t cell) {
  Cell& c = cells_[cell];
  c.state = kTombstone;
  std::vector<std::uint32_t>().swap(c.slots);
  --size_;
  dead_words_ += c.key_len;
}

void OpenMap::Rehash(std::size_t new_cap) {
  std::vector<Cell> old_cells = std::move(cells_);
  std::vector<std::uint64_t> old_pool = std::move(pool_);
  cells_.assign(new_cap, Cell{});
  pool_.clear();
  used_ = size_;
  dead_words_ = 0;
  const std::size_t mask = new_cap - 1;
  for (Cell& c : old_cells) {
    if (c.state != kFull) continue;
    std::size_t idx = c.hash & mask;
    while (cells_[idx].state == kFull) idx = (idx + 1) & mask;
    Cell& nc = cells_[idx];
    nc.hash = c.hash;
    nc.k01[0] = c.k01[0];
    nc.k01[1] = c.k01[1];
    nc.key_pos = static_cast<std::uint32_t>(pool_.size());
    nc.key_len = c.key_len;
    nc.state = kFull;
    pool_.insert(pool_.end(), old_pool.begin() + c.key_pos,
                 old_pool.begin() + c.key_pos + c.key_len);
    nc.slots = std::move(c.slots);
  }
}

std::size_t OpenMap::MemoryBytes() const {
  std::size_t bytes = cells_.capacity() * sizeof(Cell) +
                      pool_.capacity() * sizeof(std::uint64_t);
  for (const Cell& c : cells_)
    bytes += c.slots.capacity() * sizeof(std::uint32_t);
  return bytes;
}

// ----------------------------------------------------------- construction

namespace {
Program MustCompile(const Property& property) {
  std::optional<Program> prog = CompileProperty(property);
  SWMON_ASSERT_MSG(prog.has_value(),
                   "property exceeds the compiled engine's limits "
                   "(CreatePropertyMonitor falls back to the interpreter)");
  return std::move(*prog);
}
}  // namespace

CompiledEngine::CompiledEngine(Property property, MonitorConfig config)
    : property_(std::move(property)),
      prog_(MustCompile(property_)),
      config_(config),
      timers_([this](std::uint64_t slot, SimTime deadline) {
        OnTimerExpiry(static_cast<std::uint32_t>(slot), deadline);
      }) {
  const std::string err = property_.Validate();
  SWMON_ASSERT_MSG(err.empty(), err.c_str());
  interest_ = prog_.interest;
  stride_ = kWVars + static_cast<std::uint32_t>(prog_.num_vars());
  stores_.resize(prog_.num_stages());
  scratch_vars_.resize(prog_.num_vars());
  const Instr& first = prog_.code[prog_.stages[0].pattern.begin];
  if (first.op == Op::kCondConstEq || first.op == Op::kCondConstNe) {
    st0_fast_valid_ = true;
    st0_fast_ = first;
    st0_fast_whole_ =
        prog_.code[prog_.stages[0].pattern.begin + 1].op == Op::kMatch;
  }
}

CompiledEngine::CompiledEngine(Property property, Program program,
                               MonitorConfig config)
    : property_(std::move(property)),
      prog_(std::move(program)),
      config_(config),
      timers_([this](std::uint64_t slot, SimTime deadline) {
        OnTimerExpiry(static_cast<std::uint32_t>(slot), deadline);
      }) {
  const std::string err = property_.Validate();
  SWMON_ASSERT_MSG(err.empty(), err.c_str());
  interest_ = prog_.interest;
  stride_ = kWVars + static_cast<std::uint32_t>(prog_.num_vars());
  stores_.resize(prog_.num_stages());
  scratch_vars_.resize(prog_.num_vars());
  const Instr& first = prog_.code[prog_.stages[0].pattern.begin];
  if (first.op == Op::kCondConstEq || first.op == Op::kCondConstNe) {
    st0_fast_valid_ = true;
    st0_fast_ = first;
    st0_fast_whole_ =
        prog_.code[prog_.stages[0].pattern.begin + 1].op == Op::kMatch;
  }
}

// ------------------------------------------------------------- execution

bool CompiledEngine::EvalCond(const Instr& i, const FieldMap& fields,
                              const std::uint64_t* vars,
                              std::uint64_t bound) const {
  const auto f = static_cast<FieldId>(i.field);
  if (!fields.Has(f)) return (i.flags & kFlagAllowAbsent) != 0;
  const std::uint64_t lhs = fields.GetUnchecked(f);
  std::uint64_t rhs;
  if (i.op == Op::kCondConstEq || i.op == Op::kCondConstNe) {
    rhs = i.imm;
  } else {
    if (!(bound >> i.var & 1)) return false;  // unbound vars never hold
    rhs = vars[i.var];
  }
  const bool eq = ((lhs ^ rhs) & i.mask) == 0;
  return (i.op == Op::kCondConstEq || i.op == Op::kCondVarEq) ? eq : !eq;
}

bool CompiledEngine::ExecMatch(std::uint32_t pc, const FieldMap& fields,
                               const std::uint64_t* vars,
                               std::uint64_t bound) const {
  const Instr* ip = prog_.code.data() + pc;
#if defined(__GNUC__) && !defined(SWMON_NO_COMPUTED_GOTO)
  // Label table indexed by Op; bind opcodes never appear in a pattern run.
  static const void* const kJump[] = {
      &&op_cond_const_eq, &&op_cond_const_ne, &&op_cond_var_eq,
      &&op_cond_var_ne,   &&op_forbidden,     &&op_match,
      &&op_unreachable,   &&op_unreachable,   &&op_unreachable,
      &&op_unreachable,   &&op_unreachable,
  };
#define SWMON_DISPATCH() goto* kJump[static_cast<std::size_t>(ip->op)]
  SWMON_DISPATCH();
op_cond_const_eq: {
  const auto f = static_cast<FieldId>(ip->field);
  if (!fields.Has(f)) {
    if (!(ip->flags & kFlagAllowAbsent)) return false;
  } else if (((fields.GetUnchecked(f) ^ ip->imm) & ip->mask) != 0) {
    return false;
  }
  ++ip;
  SWMON_DISPATCH();
}
op_cond_const_ne: {
  const auto f = static_cast<FieldId>(ip->field);
  if (!fields.Has(f)) {
    if (!(ip->flags & kFlagAllowAbsent)) return false;
  } else if (((fields.GetUnchecked(f) ^ ip->imm) & ip->mask) == 0) {
    return false;
  }
  ++ip;
  SWMON_DISPATCH();
}
op_cond_var_eq: {
  const auto f = static_cast<FieldId>(ip->field);
  if (!fields.Has(f)) {
    if (!(ip->flags & kFlagAllowAbsent)) return false;
  } else {
    if (!(bound >> ip->var & 1)) return false;
    if (((fields.GetUnchecked(f) ^ vars[ip->var]) & ip->mask) != 0)
      return false;
  }
  ++ip;
  SWMON_DISPATCH();
}
op_cond_var_ne: {
  const auto f = static_cast<FieldId>(ip->field);
  if (!fields.Has(f)) {
    if (!(ip->flags & kFlagAllowAbsent)) return false;
  } else {
    if (!(bound >> ip->var & 1)) return false;
    if (((fields.GetUnchecked(f) ^ vars[ip->var]) & ip->mask) == 0)
      return false;
  }
  ++ip;
  SWMON_DISPATCH();
}
op_forbidden: {
  const Instr* fi = ip + 1;
  bool all_hold = true;
  for (unsigned n = ip->aux; n-- > 0; ++fi) {
    if (!EvalCond(*fi, fields, vars, bound)) {
      all_hold = false;
      break;
    }
  }
  return !all_hold;  // kMatch is the next live instruction either way
}
op_match:
  return true;
op_unreachable:
  SWMON_ASSERT_MSG(false, "bind opcode in pattern run");
  return false;
#undef SWMON_DISPATCH
#else
  for (;; ++ip) {
    switch (ip->op) {
      case Op::kCondConstEq:
      case Op::kCondConstNe:
      case Op::kCondVarEq:
      case Op::kCondVarNe:
        if (!EvalCond(*ip, fields, vars, bound)) return false;
        break;
      case Op::kForbidden: {
        const Instr* fi = ip + 1;
        bool all_hold = true;
        for (unsigned n = ip->aux; n-- > 0; ++fi) {
          if (!EvalCond(*fi, fields, vars, bound)) {
            all_hold = false;
            break;
          }
        }
        return !all_hold;
      }
      case Op::kMatch:
        return true;
      default:
        SWMON_ASSERT_MSG(false, "bind opcode in pattern run");
        return false;
    }
  }
#endif
}

namespace {
constexpr std::uint32_t kBindFail = 0xffffffffu;
}

/// Walks the kRequireField prefix of a bind run. Returns the pc of the
/// first mutating instruction, or kBindFail when a required field is
/// absent — callers unfile the instance under the OLD env between this
/// check and ExecBindCommit (the re-key contract; see engine.cpp's
/// RunAdvancePass).
static std::uint32_t ExecRequire(const Program& prog, std::uint32_t pc,
                                 const FieldMap& fields) {
  const Instr* ip = prog.code.data() + pc;
  while (ip->op == Op::kRequireField) {
    if (!fields.Has(static_cast<FieldId>(ip->field))) return kBindFail;
    ++ip;
  }
  return static_cast<std::uint32_t>(ip - prog.code.data());
}

bool CompiledEngine::ExecBind(std::uint32_t pc, const FieldMap& fields,
                              std::uint64_t* vars, std::uint64_t& bound) {
  const std::uint32_t body = ExecRequire(prog_, pc, fields);
  if (body == kBindFail) return false;
  for (const Instr* ip = prog_.code.data() + body;; ++ip) {
    switch (ip->op) {
      case Op::kBindField:
        vars[ip->var] = fields.GetUnchecked(static_cast<FieldId>(ip->field));
        bound |= std::uint64_t{1} << ip->var;
        break;
      case Op::kBindHash: {
        std::uint64_t h = 0xcbf29ce484222325ULL;  // HashFieldsToRange
        const std::uint16_t* in = prog_.aux_fields.data() + ip->aux_pos;
        for (unsigned n = 0; n < ip->aux; ++n) {
          h ^= fields.GetUnchecked(static_cast<FieldId>(in[n]));
          h *= 0x100000001b3ULL;
          h ^= h >> 29;
        }
        vars[ip->var] = h % ip->modulus + ip->base;
        bound |= std::uint64_t{1} << ip->var;
        break;
      }
      case Op::kBindRoundRobin:
        vars[ip->var] = rr_counter_++ % ip->modulus + ip->base;
        bound |= std::uint64_t{1} << ip->var;
        break;
      default:  // kBindEnd
        return true;
    }
  }
}

// ------------------------------------------------------------------ stores

std::uint32_t CompiledEngine::AllocSlot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(slab_.size() / stride_);
  slab_.resize(slab_.size() + stride_);
  return slot;
}

void CompiledEngine::InsertIntoStore(std::uint32_t slot) {
  std::uint64_t* rec = Rec(slot);
  const std::uint32_t stage = StageOf(rec);
  SWMON_ASSERT(stage >= 1 && stage < prog_.num_stages());
  StageStore& store = stores_[stage];
  const StageCode& sc = prog_.stages[stage];
  if (sc.link_count != 0) {
    const std::uint64_t bound = rec[kWBound];
    key_buf_.clear();
    bool all_bound = true;
    for (std::uint32_t i = 0; i < sc.link_count; ++i) {
      const LinkTerm& lt = prog_.links[sc.link_begin + i];
      if (!(bound >> lt.var & 1)) {
        all_bound = false;
        break;
      }
      key_buf_.push_back(rec[kWVars + lt.var]);
    }
    if (all_bound) {
      const std::uint32_t cell = store.keyed.Insert(
          key_buf_.data(), static_cast<std::uint32_t>(key_buf_.size()));
      store.keyed.slots(cell).push_back(slot);
      return;
    }
  }
  store.scan.push_back(slot);
}

namespace {
/// Swap-remove, exactly the interpreter's bucket-erase: order of the
/// remaining slots is part of the candidate-enumeration contract.
bool EraseSlot(std::vector<std::uint32_t>& v, std::uint32_t slot) {
  auto it = std::find(v.begin(), v.end(), slot);
  if (it == v.end()) return false;
  *it = v.back();
  v.pop_back();
  return true;
}
}  // namespace

void CompiledEngine::RemoveFromStore(std::uint32_t slot) {
  const std::uint64_t* rec = Rec(slot);
  const std::uint32_t stage = StageOf(rec);
  if (stage < 1 || stage >= prog_.num_stages()) return;
  StageStore& store = stores_[stage];
  const StageCode& sc = prog_.stages[stage];
  if (sc.link_count != 0) {
    const std::uint64_t bound = rec[kWBound];
    key_buf_.clear();
    bool all_bound = true;
    for (std::uint32_t i = 0; i < sc.link_count; ++i) {
      const LinkTerm& lt = prog_.links[sc.link_begin + i];
      if (!(bound >> lt.var & 1)) {
        all_bound = false;
        break;
      }
      key_buf_.push_back(rec[kWVars + lt.var]);
    }
    if (all_bound) {
      const std::uint32_t cell = store.keyed.Find(
          key_buf_.data(), static_cast<std::uint32_t>(key_buf_.size()));
      if (cell != OpenMap::kNone) {
        EraseSlot(store.keyed.slots(cell), slot);
        if (store.keyed.slots(cell).empty()) store.keyed.EraseAt(cell);
      }
      return;
    }
  }
  EraseSlot(store.scan, slot);
}

void CompiledEngine::BuildStage0Key(const std::uint64_t* vars) {
  key_buf_.clear();
  for (const std::uint16_t v : prog_.stage0_vars) key_buf_.push_back(vars[v]);
}

// -------------------------------------------------------------- lifecycle

void CompiledEngine::ArmWindow(std::uint32_t slot, const StageCode& completed,
                               const DataplaneEvent* ev) {
  std::int64_t window_ns = completed.window_ns;
  if (completed.window_field >= 0 && ev != nullptr) {
    // Presence was verified by the bind run's kRequireField prefix.
    window_ns = Duration::Seconds(static_cast<std::int64_t>(
                    ev->fields.GetUnchecked(
                        static_cast<FieldId>(completed.window_field))))
                    .nanos();
  }
  if (window_ns > 0)
    // Ordinal = instance id (NOT the slot): deadline ties must fire in id
    // order in both engines and in every shard replica (timer_set.hpp).
    timers_.Arm(slot, now_ + Duration::Nanos(window_ns), Rec(slot)[kWId]);
  else
    timers_.Cancel(slot);
}

void CompiledEngine::ReportViolation(const std::uint64_t* rec, SimTime when,
                                     const std::string& trigger,
                                     std::uint32_t trigger_stage_index) {
  Violation v;
  v.property = prog_.name;
  v.time = when;
  v.instance_id = rec[kWId];
  v.trigger_stage = trigger;
  v.trigger_stage_index = trigger_stage_index;
  if (config_.provenance >= ProvenanceLevel::kLimited) {
    const std::uint64_t bound = rec[kWBound];
    for (std::size_t i = 0; i < prog_.num_vars(); ++i) {
      if (bound >> i & 1)
        v.bindings.emplace_back(prog_.vars[i], rec[kWVars + i]);
    }
  }
  SWMON_LOG_INFO("monitor", "%s", v.ToString().c_str());
  violations_.push_back(std::move(v));
  ++stats_.violations;
}

void CompiledEngine::DestroyInstance(std::uint32_t slot) {
  std::uint64_t* rec = Rec(slot);
  RemoveFromStore(slot);
  // Live records always have every stage-0 variable bound (they were bound
  // by stage 0's bind run at creation and vars are never unbound).
  BuildStage0Key(rec + kWVars);
  const std::uint32_t cell = stage0_index_.Find(
      key_buf_.data(), static_cast<std::uint32_t>(key_buf_.size()));
  if (cell != OpenMap::kNone) {
    // Order-preserving erase, like the interpreter's std::erase — the
    // stage-0 bucket's order drives refresh iteration.
    auto& slots = stage0_index_.slots(cell);
    slots.erase(std::remove(slots.begin(), slots.end(), slot), slots.end());
    if (slots.empty()) stage0_index_.EraseAt(cell);
  }
  timers_.Cancel(slot);
  SetStageMatch(rec, kDeadStage, 0);
  free_slots_.push_back(slot);
  --live_count_;
  if (config_.max_instances > 0 &&
      creation_order_.size() > 2 * live_count_ + 64)
    CompactCreationOrder();
}

void CompiledEngine::CompactCreationOrder() {
  std::deque<EvictionEntry> live_order;
  for (const EvictionEntry& e : creation_order_) {
    const std::uint64_t* rec = Rec(e.slot);
    if (rec[kWId] == e.id && StageOf(rec) != kDeadStage)
      live_order.push_back(e);
  }
  creation_order_ = std::move(live_order);
}

void CompiledEngine::AdvanceInstance(std::uint32_t slot,
                                     const DataplaneEvent* ev) {
  // Caller verified the match, committed env updates, and unfiled the
  // record from its stage store under the pre-update env.
  std::uint64_t* rec = Rec(slot);
  const std::uint32_t stage = StageOf(rec);
  const StageCode& completed = prog_.stages[stage];
  SetStageMatch(rec, stage + 1, 0);
  if (stage + 1 == prog_.num_stages()) {
    ReportViolation(rec, now_, completed.label, stage);
    DestroyInstance(slot);
    return;
  }
  ArmWindow(slot, completed, ev);
  InsertIntoStore(slot);
}

void CompiledEngine::OnTimerExpiry(std::uint32_t slot, SimTime deadline) {
  std::uint64_t* rec = Rec(slot);
  const std::uint32_t stage = StageOf(rec);
  if (stage == kDeadStage) return;  // defensive; Cancel precedes slot reuse
  now_ = std::max(now_, deadline);
  if (stage < prog_.num_stages() &&
      prog_.stages[stage].kind == StageKind::kTimeout) {
    // Feature 7: the elapsed window IS the observation.
    ++stats_.timeout_observations;
    ++stats_.instances_advanced;
    RemoveFromStore(slot);  // env is unchanged, so the filed key is current
    AdvanceInstance(slot, nullptr);
  } else {
    // Feature 3: the window lapsed before the next observation.
    ++stats_.instances_expired;
    DestroyInstance(slot);
  }
}

void CompiledEngine::EvictIfNeeded() {
  if (config_.max_instances == 0) return;
  while (live_count_ > config_.max_instances) {
    while (!creation_order_.empty()) {
      const EvictionEntry& e = creation_order_.front();
      const std::uint64_t* rec = Rec(e.slot);
      if (rec[kWId] == e.id && StageOf(rec) != kDeadStage) break;
      creation_order_.pop_front();  // lazy prune of dead entries
    }
    if (creation_order_.empty()) return;
    const EvictionEntry victim = creation_order_.front();
    creation_order_.pop_front();
    DestroyInstance(victim.slot);
    ++stats_.instances_evicted;
  }
}

// ------------------------------------------------------------- event path

void CompiledEngine::AdvanceTime(SimTime now) {
  if (now <= now_) return;
  // Skip the out-of-line heap walk entirely when nothing is armed — for
  // windowless properties this is every single event.
  if (timers_.heap_size() != 0) timers_.Advance(now);
  now_ = now;
}

void CompiledEngine::ProcessEvent(const DataplaneEvent& event) {
  ++event_seq_;
  ++stats_.events;
  AdvanceTime(event.time);
  RunPasses(event, ~std::uint64_t{0});
}

void CompiledEngine::ProcessShardedEvent(const DataplaneEvent& event,
                                         std::uint64_t stage_mask,
                                         bool count) {
  // Restricted mirror of ProcessEvent (see engine.cpp): exactly one replica
  // per event counts it, and the driver already advanced time so the
  // AdvanceTime here is a monotonicity no-op for normal sharded delivery.
  ++event_seq_;
  if (count) {
    ++stats_.events;
    ++stats_.events_dispatched;
  }
  AdvanceTime(event.time);
  RunPasses(event, stage_mask);
}

void CompiledEngine::RunPasses(const DataplaneEvent& event,
                               std::uint64_t stage_mask) {
  const auto t = static_cast<std::size_t>(event.type);
  if (live_count_ != 0) {
    const std::uint64_t abort_mask = prog_.abort_stage_mask[t] & stage_mask;
    if (abort_mask != 0) RunAbortPass(event, abort_mask);
  }
  if (live_count_ != 0) {
    const std::uint64_t advance_mask =
        prog_.advance_stage_mask[t] & stage_mask;
    if (advance_mask != 0) RunAdvancePass(event, advance_mask);
  }
  if (!(stage_mask & 1)) return;  // create + suppressor belong to stage 0
  // Stage-0 fail-fast: the type check plus the pattern's leading constant
  // condition, evaluated inline. Exactly the first steps RunCreatePass
  // would take (it touches no state before its ExecMatch), so skipping
  // the call on failure is unobservable.
  const PatternCode& p0 = prog_.stages[0].pattern;
  bool enter_create = p0.event_type < 0 ||
                      static_cast<std::size_t>(p0.event_type) == t;
  if (enter_create && st0_fast_valid_) {
    const auto f = static_cast<FieldId>(st0_fast_.field);
    if (!event.fields.Has(f)) {
      enter_create = (st0_fast_.flags & kFlagAllowAbsent) != 0;
    } else {
      const bool eq =
          ((event.fields.GetUnchecked(f) ^ st0_fast_.imm) & st0_fast_.mask) ==
          0;
      enter_create = st0_fast_.op == Op::kCondConstEq ? eq : !eq;
    }
  }
  if (enter_create) RunCreatePass(event);
  if (!prog_.suppressors.empty()) RunSuppressorPass(event);
  if (live_count_ > stats_.peak_live) stats_.peak_live = live_count_;
}

void CompiledEngine::RunAbortPass(const DataplaneEvent& ev,
                                  std::uint64_t stage_mask) {
  const auto t = static_cast<std::size_t>(ev.type);
  for (std::size_t k = 1; k < prog_.num_stages(); ++k) {
    if (!(stage_mask >> k & 1)) continue;
    const StageCode& st = prog_.stages[k];
    victims_.clear();
    const auto consider = [&](std::uint32_t slot) {
      const std::uint64_t* rec = Rec(slot);
      if (StageOf(rec) != k) return;
      ++stats_.candidate_checks;
      for (const PatternCode& a : st.aborts) {
        if (a.event_type >= 0 && static_cast<std::size_t>(a.event_type) != t)
          continue;
        if (ExecMatch(a.begin, ev.fields, rec + kWVars, rec[kWBound])) {
          victims_.push_back(EvictionEntry{rec[kWId], slot});
          return;
        }
      }
    };
    const StageStore& store = stores_[k];
    store.keyed.ForEach([&](const std::vector<std::uint32_t>& slots) {
      for (const std::uint32_t slot : slots) consider(slot);
    });
    for (const std::uint32_t slot : store.scan) consider(slot);

    // Sorted by instance id — the engine-independent destruction order
    // both engines commit to (see engine.cpp's RunAbortPass).
    std::sort(victims_.begin(), victims_.end(),
              [](const EvictionEntry& a, const EvictionEntry& b) {
                return a.id < b.id;
              });
    for (const EvictionEntry& v : victims_) {
      DestroyInstance(v.slot);
      ++stats_.instances_aborted;
    }
  }
}

void CompiledEngine::RunAdvancePass(const DataplaneEvent& ev,
                                    std::uint64_t stage_mask) {
  // Highest stage first so an instance advanced into stage k+1 is not
  // examined again there by the same event.
  for (std::size_t k = prog_.num_stages(); k-- > 1;) {
    if (!(stage_mask >> k & 1)) continue;
    const StageCode& st = prog_.stages[k];
    StageStore& store = stores_[k];

    cand_.clear();
    if (st.link_count != 0) {
      key_buf_.clear();
      bool projectable = true;
      for (std::uint32_t i = 0; i < st.link_count; ++i) {
        const auto f =
            static_cast<FieldId>(prog_.links[st.link_begin + i].field);
        if (!ev.fields.Has(f)) {
          projectable = false;
          break;
        }
        key_buf_.push_back(ev.fields.GetUnchecked(f));
      }
      if (projectable) {
        const std::uint32_t cell = store.keyed.Find(
            key_buf_.data(), static_cast<std::uint32_t>(key_buf_.size()));
        if (cell != OpenMap::kNone) {
          const auto& slots = store.keyed.slots(cell);
          cand_.insert(cand_.end(), slots.begin(), slots.end());
        }
      }
      cand_.insert(cand_.end(), store.scan.begin(), store.scan.end());
    } else {
      // Multiple match (Feature 8): every instance at this stage is a
      // candidate. Unlinked stages only ever file into scan.
      cand_.insert(cand_.end(), store.scan.begin(), store.scan.end());
    }

    for (const std::uint32_t slot : cand_) {
      std::uint64_t* rec = Rec(slot);
      if (StageOf(rec) != k || rec[kWSeq] == event_seq_) continue;
      ++stats_.candidate_checks;
      if (!ExecMatch(st.pattern.begin, ev.fields, rec + kWVars, rec[kWBound]))
        continue;
      // The bind run's presence checks are the only way it can fail; run
      // them first so the unfile-under-old-env / mutate / re-file sequence
      // below can bind straight into the record.
      const std::uint32_t body = ExecRequire(prog_, st.bind_begin, ev.fields);
      if (body == kBindFail) continue;
      rec[kWSeq] = event_seq_;
      const bool rebinds = st.has_bindings;
      if (rebinds) RemoveFromStore(slot);
      std::uint64_t bound = rec[kWBound];
      ExecBind(body, ev.fields, rec + kWVars, bound);
      rec[kWBound] = bound;
      const std::uint32_t matches = MatchesOf(rec) + 1;
      SetStageMatch(rec, static_cast<std::uint32_t>(k), matches);
      // Quantitative stages (extension): accumulate matches until the
      // stage's threshold before the observation counts as complete.
      if (matches < st.min_count) {
        if (rebinds) InsertIntoStore(slot);  // re-file under the new key
        continue;
      }
      if (!rebinds) RemoveFromStore(slot);
      ++stats_.instances_advanced;
      AdvanceInstance(slot, &ev);
    }
  }
}

void CompiledEngine::RunCreatePass(const DataplaneEvent& ev) {
  const StageCode& st0 = prog_.stages[0];
  if (st0.pattern.event_type >= 0 &&
      static_cast<std::size_t>(st0.pattern.event_type) !=
          static_cast<std::size_t>(ev.type))
    return;
  // ProcessEvent's fail-fast already proved the leading constant condition
  // when st0_fast_valid_ — resume the pattern run right after it, or skip
  // the run entirely when that condition was the whole pattern.
  if (!st0_fast_whole_) {
    const std::uint32_t pc = st0.pattern.begin + (st0_fast_valid_ ? 1 : 0);
    if (!ExecMatch(pc, ev.fields, scratch_vars_.data(), 0)) return;
  }

  // Suppression (negated-history preconditions).
  if (prog_.suppression_key_count != 0) {
    key_buf_.clear();
    bool all_present = true;
    for (std::uint32_t i = 0; i < prog_.suppression_key_count; ++i) {
      const auto f = static_cast<FieldId>(
          prog_.key_fields[prog_.suppression_key_begin + i]);
      if (!ev.fields.Has(f)) {
        all_present = false;
        break;
      }
      key_buf_.push_back(ev.fields.GetUnchecked(f));
    }
    if (all_present &&
        suppressed_.Find(key_buf_.data(),
                         static_cast<std::uint32_t>(key_buf_.size())) !=
            OpenMap::kNone) {
      ++stats_.suppressed_creations;
      return;
    }
  }

  // The dedup path below discards a *successful* bind — snapshot the
  // round-robin counter so a duplicate stage-0 match never consumes a
  // slot (see engine.cpp's RunCreatePass).
  const std::uint64_t rr_before = rr_counter_;
  std::uint64_t bound = 0;
  if (!ExecBind(st0.bind_begin, ev.fields, scratch_vars_.data(), bound))
    return;

  // Dedup / refresh (Feature 3's per-pair timer semantics).
  BuildStage0Key(scratch_vars_.data());
  const std::uint32_t key_len = static_cast<std::uint32_t>(key_buf_.size());
  const std::uint32_t dedup = stage0_index_.Find(key_buf_.data(), key_len);
  if (dedup != OpenMap::kNone && !stage0_index_.slots(dedup).empty()) {
    rr_counter_ = rr_before;
    if (st0.refresh_on_rematch) {
      for (const std::uint32_t slot : stage0_index_.slots(dedup)) {
        if (StageOf(Rec(slot)) != 1) continue;
        ArmWindow(slot, st0, &ev);
        ++stats_.instances_refreshed;
      }
    }
    return;  // an equivalent attempt is already live
  }

  const std::uint64_t id = next_instance_id_++;
  const std::uint32_t slot = AllocSlot();
  std::uint64_t* rec = Rec(slot);
  rec[kWId] = id;
  rec[kWCreated] = static_cast<std::uint64_t>(now_.nanos());
  rec[kWSeq] = event_seq_;
  SetStageMatch(rec, 0, 0);
  rec[kWBound] = bound;
  std::copy(scratch_vars_.begin(), scratch_vars_.end(), rec + kWVars);
  // AllocSlot may have grown the slab, but key_buf_ still holds the
  // stage-0 key built above.
  const std::uint32_t cell = stage0_index_.Insert(key_buf_.data(), key_len);
  stage0_index_.slots(cell).push_back(slot);
  if (config_.max_instances > 0)
    creation_order_.push_back(EvictionEntry{id, slot});
  ++stats_.instances_created;
  ++live_count_;
  AdvanceInstance(slot, &ev);  // commits stage 0 -> 1 (or violates if n==1)
  EvictIfNeeded();
}

void CompiledEngine::RunSuppressorPass(const DataplaneEvent& ev) {
  for (const SuppressorCode& sup : prog_.suppressors) {
    if (sup.pattern.event_type >= 0 &&
        static_cast<std::size_t>(sup.pattern.event_type) !=
            static_cast<std::size_t>(ev.type))
      continue;
    // Suppressor patterns evaluate under an empty environment.
    if (!ExecMatch(sup.pattern.begin, ev.fields, scratch_vars_.data(), 0))
      continue;
    key_buf_.clear();
    bool all_present = true;
    for (std::uint32_t i = 0; i < sup.key_count; ++i) {
      const auto f = static_cast<FieldId>(prog_.key_fields[sup.key_begin + i]);
      if (!ev.fields.Has(f)) {
        all_present = false;
        break;
      }
      key_buf_.push_back(ev.fields.GetUnchecked(f));
    }
    if (all_present)
      suppressed_.Insert(key_buf_.data(),
                         static_cast<std::uint32_t>(key_buf_.size()));
  }
}

// --------------------------------------------------------------- reporting

std::size_t CompiledEngine::StateBytes() const {
  std::size_t bytes = slab_.capacity() * sizeof(std::uint64_t) +
                      free_slots_.capacity() * sizeof(std::uint32_t) +
                      stage0_index_.MemoryBytes() + suppressed_.MemoryBytes();
  for (const StageStore& s : stores_)
    bytes += s.keyed.MemoryBytes() + s.scan.capacity() * sizeof(std::uint32_t);
  return bytes;
}

void CompiledEngine::CollectInto(telemetry::Snapshot& snap,
                                 std::string_view name) const {
  MonitorStats s = stats_;
  s.timers_armed = timers_.total_armed();
  s.timer_stale_pops = timers_.stale_popped();
  std::string prefix = "monitor.engine.";
  prefix.append(name);
  prefix += '.';
  const auto set = [&](const char* leaf, std::uint64_t v) {
    snap.SetCounter(prefix + leaf, v);
  };
  set("events", s.events);
  set("events_dispatched", s.events_dispatched);
  set("events_filtered", s.events_filtered);
  set("instances_created", s.instances_created);
  set("instances_refreshed", s.instances_refreshed);
  set("instances_advanced", s.instances_advanced);
  set("instances_expired", s.instances_expired);
  set("instances_aborted", s.instances_aborted);
  set("instances_evicted", s.instances_evicted);
  set("timeout_observations", s.timeout_observations);
  set("suppressed_creations", s.suppressed_creations);
  set("violations", s.violations);
  set("candidate_checks", s.candidate_checks);
  set("timers_armed", s.timers_armed);
  set("timer_stale_pops", s.timer_stale_pops);
  snap.SetGauge(prefix + "peak_live", static_cast<std::int64_t>(s.peak_live));
  snap.SetGauge(prefix + "live_instances",
                static_cast<std::int64_t>(live_count_));
  snap.SetGauge(prefix + "eviction_queue",
                static_cast<std::int64_t>(creation_order_.size()));
  snap.SetGauge(prefix + "timers_pending",
                static_cast<std::int64_t>(timers_.armed_count()));
}

}  // namespace swmon::compiled
