// The compiled monitor engine: executes the bytecode Program over packed
// per-instance state records.
//
// Observable behaviour is bit-identical to MonitorEngine on every input
// (violation streams including instance ids and binding order, plus every
// counter CollectInto publishes) — tests/compiled_engine_test.cpp holds
// the two to that contract differentially. What differs is the machine:
//
//   * Instance state lives in one flat u64 slab, `stride` words per
//     record (id, created, last-event-seq, stage|matches, bound-mask,
//     then the variable environment) — no per-instance allocation, no
//     std::optional, boundness is one bitmask word.
//   * Per-stage candidate indexes and the stage-0 dedup index are
//     open-addressed hash tables (OpenMap) from key tuples to slot
//     buckets; keys live in a flat pool, probing is linear with
//     tombstones, and lookups build their key in a reused scratch buffer
//     — the steady-state event path performs zero heap allocations.
//   * Pattern evaluation walks straight-line bytecode via computed goto
//     (GNU extensions; portable switch fallback), not the spec tree.
//   * Per-event-type stage masks let ProcessEvent skip the abort/advance
//     passes with one AND when no stage can react to the event's type.
//
// Timers are keyed by SLOT, not instance id: DestroyInstance cancels
// before any slot reuse, and TimerSet's generation counter makes a
// re-armed slot distinct from its stale heap entries, so expiry order
// (deadline, then arming order) is preserved exactly.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "event/timer_set.hpp"
#include "monitor/compiled/bytecode.hpp"
#include "monitor/property_monitor.hpp"

namespace swmon::compiled {

/// Open-addressed map from u64 key tuples to slot buckets (vector of
/// record slots in insertion order). Linear probing, tombstones, resize
/// at ~70% occupancy. Key tuples are stored in one flat pool; width may
/// vary per entry (the suppression set mixes key shapes), so equality
/// compares (hash, length, values).
class OpenMap {
 public:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  static std::uint64_t HashKey(const std::uint64_t* key, std::uint32_t len) {
    // FlowKey::Hash's mixing, over a span.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint32_t i = 0; i < len; ++i) {
      h ^= key[i];
      h *= 0x100000001b3ULL;
      h ^= h >> 29;
    }
    return h;
  }

  /// Cell index holding the key, or kNone.
  std::uint32_t Find(const std::uint64_t* key, std::uint32_t len) const;
  /// Finds or creates the cell for the key.
  std::uint32_t Insert(const std::uint64_t* key, std::uint32_t len);
  /// Tombstones the cell and releases its bucket storage.
  void EraseAt(std::uint32_t cell);

  std::vector<std::uint32_t>& slots(std::uint32_t cell) {
    return cells_[cell].slots;
  }
  const std::vector<std::uint32_t>& slots(std::uint32_t cell) const {
    return cells_[cell].slots;
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return cells_.size(); }
  /// Visits every occupied cell (unspecified order — callers must not
  /// derive observable ordering from it; see RunAbortPass).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::uint32_t i = 0; i < cells_.size(); ++i)
      if (cells_[i].state == kFull) fn(cells_[i].slots);
  }
  std::size_t MemoryBytes() const;

 private:
  static constexpr std::uint8_t kEmpty = 0, kFull = 1, kTombstone = 2;
  struct Cell {
    std::uint64_t hash = 0;
    /// First two key words cached inline: for the short keys every Table-1
    /// property uses, equality never has to chase key_pos into pool_.
    std::uint64_t k01[2] = {0, 0};
    std::uint32_t key_pos = 0;
    std::uint16_t key_len = 0;
    std::uint8_t state = kEmpty;
    std::vector<std::uint32_t> slots;
  };

  bool KeyEquals(const Cell& c, std::uint64_t hash, const std::uint64_t* key,
                 std::uint32_t len) const {
    if (c.hash != hash || c.key_len != len) return false;
    if (len <= 2) {
      for (std::uint32_t i = 0; i < len; ++i)
        if (c.k01[i] != key[i]) return false;
      return true;
    }
    for (std::uint32_t i = 0; i < len; ++i)
      if (pool_[c.key_pos + i] != key[i]) return false;
    return true;
  }
  void Rehash(std::size_t new_cap);

  std::vector<Cell> cells_;
  std::vector<std::uint64_t> pool_;
  std::size_t size_ = 0;        // full cells
  std::size_t used_ = 0;        // full + tombstoned cells
  std::size_t dead_words_ = 0;  // pool words owned by erased cells
};

class CompiledEngine : public PropertyMonitor {
 public:
  /// Compiles internally; asserts the property is compilable (callers that
  /// need the fallback path go through CreatePropertyMonitor).
  explicit CompiledEngine(Property property, MonitorConfig config = {});
  /// Adopts a program already produced by CompileProperty(property).
  CompiledEngine(Property property, Program program, MonitorConfig config);

  CompiledEngine(const CompiledEngine&) = delete;
  CompiledEngine& operator=(const CompiledEngine&) = delete;

  void ProcessEvent(const DataplaneEvent& event) override;
  void AdvanceTime(SimTime now) override;
  void ProcessDispatchedEvent(const DataplaneEvent& event) override {
    ++stats_.events_dispatched;
    ProcessEvent(event);
  }
  void NoteFilteredEvent(SimTime now) override {
    ++stats_.events_filtered;
    AdvanceTime(now);
  }

  /// Instance-sharded delivery: runs only the passes `stage_mask` selects
  /// (see PropertyMonitor::ProcessShardedEvent).
  void ProcessShardedEvent(const DataplaneEvent& event,
                           std::uint64_t stage_mask, bool count) override;

  std::uint64_t created_count() const override {
    return stats_.instances_created;
  }

  const Property& property() const override { return property_; }
  const Program& program() const { return prog_; }

  void CollectInto(telemetry::Snapshot& snap,
                   std::string_view name) const override;

  const std::vector<Violation>& violations() const override {
    return violations_;
  }
  std::vector<Violation> TakeViolations() override {
    return std::move(violations_);
  }
  std::size_t live_instances() const override { return live_count_; }
  SimTime now() const override { return now_; }
  std::size_t StateBytes() const override;

 private:
  /// Record word layout (stride_ = kWVars + num_vars).
  enum : std::uint32_t {
    kWId = 0,         // instance id
    kWCreated = 1,    // creation time, ns (bit pattern of SimTime nanos)
    kWSeq = 2,        // last event seq that advanced/created this instance
    kWStageMatch = 3, // stage (hi 32) | stage_matches (lo 32)
    kWBound = 4,      // bitmask of bound vars
    kWVars = 5,       // num_vars environment words
  };
  static constexpr std::uint32_t kDeadStage = 0xffffffffu;

  std::uint64_t* Rec(std::uint32_t slot) {
    return slab_.data() + static_cast<std::size_t>(slot) * stride_;
  }
  const std::uint64_t* Rec(std::uint32_t slot) const {
    return slab_.data() + static_cast<std::size_t>(slot) * stride_;
  }
  static std::uint32_t StageOf(const std::uint64_t* rec) {
    return static_cast<std::uint32_t>(rec[kWStageMatch] >> 32);
  }
  static std::uint32_t MatchesOf(const std::uint64_t* rec) {
    return static_cast<std::uint32_t>(rec[kWStageMatch]);
  }
  static void SetStageMatch(std::uint64_t* rec, std::uint32_t stage,
                            std::uint32_t matches) {
    rec[kWStageMatch] = (static_cast<std::uint64_t>(stage) << 32) | matches;
  }

  struct StageStore {
    OpenMap keyed;
    std::vector<std::uint32_t> scan;
  };

  // --- bytecode execution ---
  bool ExecMatch(std::uint32_t pc, const FieldMap& fields,
                 const std::uint64_t* vars, std::uint64_t bound) const;
  bool EvalCond(const Instr& i, const FieldMap& fields,
                const std::uint64_t* vars, std::uint64_t bound) const;
  /// Runs a bind run against the record env in place. Returns false (with
  /// no mutation — presence checks all precede the first bind) when a
  /// required field is absent.
  bool ExecBind(std::uint32_t pc, const FieldMap& fields, std::uint64_t* vars,
                std::uint64_t& bound);

  // --- instance lifecycle (mirrors of engine.cpp) ---
  std::uint32_t AllocSlot();
  void InsertIntoStore(std::uint32_t slot);
  void RemoveFromStore(std::uint32_t slot);
  void DestroyInstance(std::uint32_t slot);
  void AdvanceInstance(std::uint32_t slot, const DataplaneEvent* ev);
  void ArmWindow(std::uint32_t slot, const StageCode& completed,
                 const DataplaneEvent* ev);
  void ReportViolation(const std::uint64_t* rec, SimTime when,
                       const std::string& trigger,
                       std::uint32_t trigger_stage_index);
  void OnTimerExpiry(std::uint32_t slot, SimTime deadline);
  void EvictIfNeeded();
  void CompactCreationOrder();
  /// Key of the stage-0 dedup index, built in key_buf_. Live records always
  /// have every stage-0 variable bound (stage 0's bind run bound them).
  void BuildStage0Key(const std::uint64_t* vars);

  // --- per-event passes ---
  /// The abort/advance/create/suppressor sequence shared by ProcessEvent
  /// (full mask) and ProcessShardedEvent (the replica's stage mask; bit 0
  /// gates create + suppressor).
  void RunPasses(const DataplaneEvent& ev, std::uint64_t stage_mask);
  void RunAbortPass(const DataplaneEvent& ev, std::uint64_t stage_mask);
  void RunAdvancePass(const DataplaneEvent& ev, std::uint64_t stage_mask);
  void RunCreatePass(const DataplaneEvent& ev);
  void RunSuppressorPass(const DataplaneEvent& ev);

  Property property_;
  Program prog_;
  MonitorConfig config_;
  MonitorStats stats_;
  std::vector<Violation> violations_;

  SimTime now_ = SimTime::Zero();
  std::uint64_t event_seq_ = 0;
  std::uint64_t next_instance_id_ = 1;
  std::uint64_t rr_counter_ = 0;

  std::uint32_t stride_ = 0;
  std::vector<std::uint64_t> slab_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_count_ = 0;

  std::vector<StageStore> stores_;  // one per stage (index 0 unused)
  /// Stage-0 fail-fast: when the stage-0 pattern opens with a constant
  /// condition, a copy of that instruction is checked inline in
  /// ProcessEvent before paying the create-pass call. Identical to the
  /// first step ExecMatch would take, so skipping is unobservable.
  /// st0_fast_whole_ additionally records that this condition IS the whole
  /// pattern, letting the create pass skip its ExecMatch call outright.
  bool st0_fast_valid_ = false;
  bool st0_fast_whole_ = false;
  Instr st0_fast_{};
  OpenMap stage0_index_;
  OpenMap suppressed_;  // set: buckets unused

  struct EvictionEntry {
    std::uint64_t id;
    std::uint32_t slot;
  };
  std::deque<EvictionEntry> creation_order_;
  TimerSet timers_;

  // Reused per-event scratch (what keeps the hot path allocation-free).
  std::vector<std::uint64_t> scratch_vars_;
  std::vector<std::uint64_t> key_buf_;
  std::vector<std::uint32_t> cand_;
  std::vector<EvictionEntry> victims_;
};

}  // namespace swmon::compiled

namespace swmon {
using compiled::CompiledEngine;
}  // namespace swmon
