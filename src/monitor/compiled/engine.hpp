// The compiled monitor engine: executes the bytecode Program over packed
// per-instance state records.
//
// Observable behaviour is bit-identical to MonitorEngine on every input
// (violation streams including instance ids and binding order, plus every
// counter CollectInto publishes) — tests/compiled_engine_test.cpp holds
// the two to that contract differentially. What differs is the machine:
//
//   * Instance state lives in one flat u64 slab, `stride` words per
//     record (id, created, last-event-seq, stage|matches, bound-mask,
//     then the variable environment) — no per-instance allocation, no
//     std::optional, boundness is one bitmask word.
//   * Per-stage candidate indexes and the stage-0 dedup index are
//     open-addressed hash tables (OpenMap) from key tuples to slot
//     buckets; keys live in a flat pool, probing is linear with
//     tombstones, and lookups build their key in a reused scratch buffer
//     — the steady-state event path performs zero heap allocations.
//   * Pattern evaluation walks straight-line bytecode via computed goto
//     (GNU extensions; portable switch fallback), not the spec tree.
//   * Per-event-type stage masks let ProcessEvent skip the abort/advance
//     passes with one AND when no stage can react to the event's type.
//
// Timers are keyed by SLOT, not instance id: DestroyInstance cancels
// before any slot reuse, and TimerSet's generation counter makes a
// re-armed slot distinct from its stale heap entries, so expiry order
// (deadline, then arming order) is preserved exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "event/timer_set.hpp"
#include "monitor/compiled/bytecode.hpp"
#include "monitor/key_hash.hpp"
#include "monitor/property_monitor.hpp"

namespace swmon::compiled {

/// Open-addressed map from u64 key tuples to slot buckets (vector of
/// record slots in insertion order). Linear probing, tombstones, resize
/// at ~70% occupancy. Key tuples are stored in one flat pool; width may
/// vary per entry (the suppression set mixes key shapes), so equality
/// compares (hash, length, values).
class OpenMap {
 public:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  static std::uint64_t HashKey(const std::uint64_t* key, std::uint32_t len) {
    // FlowKey::Hash's mixing, over a span (key_hash.hpp — shared with the
    // batch-mode fused-key table, which precomputes these hashes).
    return HashKeySpan(key, len);
  }

  /// Probe telemetry, published under monitor.compiled.* by the engine.
  /// Mutable state updated by const lookups; purely observational — batch
  /// and scalar execution of the same stream produce identical values,
  /// which the differential tests assert.
  struct ProbeStats {
    std::uint64_t probes = 0;          // Find/Insert lookups performed
    std::uint64_t probe_steps = 0;     // cells examined across lookups
    std::uint64_t shortkey_hits = 0;   // key compares resolved inline (k01)
    std::uint64_t shortkey_misses = 0; // key compares that chased pool_
    /// Probe-length histogram, bucket i = lookups whose probe sequence
    /// examined v cells with bit_width(v) == i (telemetry bucketing).
    std::uint64_t probe_len[16] = {};
  };
  const ProbeStats& probe_stats() const { return probe_; }

  /// Cell index holding the key, or kNone.
  std::uint32_t Find(const std::uint64_t* key, std::uint32_t len) const {
    return FindHashed(HashKey(key, len), key, len);
  }
  /// Find with the key's hash already computed (batch mode: precomputed
  /// once per event by the engine's hash pass or the fused-key table).
  /// `hash` MUST equal HashKey(key, len).
  std::uint32_t FindHashed(std::uint64_t hash, const std::uint64_t* key,
                           std::uint32_t len) const;
  /// Finds or creates the cell for the key.
  std::uint32_t Insert(const std::uint64_t* key, std::uint32_t len);
  /// Tombstones the cell and releases its bucket storage.
  void EraseAt(std::uint32_t cell);

  /// Advisory: pull the first probe cell for `hash` toward the cache. No
  /// state change, no telemetry — purely a latency hint, so issuing (or
  /// skipping) prefetches can never perturb observable behaviour.
  void Prefetch(std::uint64_t hash) const {
    if (!cells_.empty())
      __builtin_prefetch(&cells_[hash & (cells_.size() - 1)]);
  }
  /// Advisory: when the first probe cell already holds `hash`, returns its
  /// first slot so the caller can prefetch the slab record; kNone
  /// otherwise (including on a probe that would need to walk). Counts
  /// nothing for the same reason as Prefetch.
  std::uint32_t PeekFirstSlot(std::uint64_t hash) const {
    if (cells_.empty()) return kNone;
    const Cell& c = cells_[hash & (cells_.size() - 1)];
    if (c.state != kFull || c.hash != hash || c.slots.empty()) return kNone;
    return c.slots.front();
  }

  std::vector<std::uint32_t>& slots(std::uint32_t cell) {
    return cells_[cell].slots;
  }
  const std::vector<std::uint32_t>& slots(std::uint32_t cell) const {
    return cells_[cell].slots;
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return cells_.size(); }
  /// Visits every occupied cell (unspecified order — callers must not
  /// derive observable ordering from it; see RunAbortPass).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::uint32_t i = 0; i < cells_.size(); ++i)
      if (cells_[i].state == kFull) fn(cells_[i].slots);
  }
  std::size_t MemoryBytes() const;

 private:
  static constexpr std::uint8_t kEmpty = 0, kFull = 1, kTombstone = 2;
  struct Cell {
    std::uint64_t hash = 0;
    /// First two key words cached inline: for the short keys every Table-1
    /// property uses, equality never has to chase key_pos into pool_.
    std::uint64_t k01[2] = {0, 0};
    std::uint32_t key_pos = 0;
    std::uint16_t key_len = 0;
    std::uint8_t state = kEmpty;
    std::vector<std::uint32_t> slots;
  };

  bool KeyEquals(const Cell& c, std::uint64_t hash, const std::uint64_t* key,
                 std::uint32_t len) const {
    if (c.hash != hash || c.key_len != len) return false;
    if (len <= 2) {
      ++probe_.shortkey_hits;  // resolved from the inline k01 cache
      for (std::uint32_t i = 0; i < len; ++i)
        if (c.k01[i] != key[i]) return false;
      return true;
    }
    ++probe_.shortkey_misses;  // wide key: equality chases the pool
    for (std::uint32_t i = 0; i < len; ++i)
      if (pool_[c.key_pos + i] != key[i]) return false;
    return true;
  }
  void NoteProbe(std::uint64_t steps) const {
    ++probe_.probes;
    probe_.probe_steps += steps;
    unsigned b = 0;
    while (steps != 0) {  // bit_width
      ++b;
      steps >>= 1;
    }
    if (b >= 16) b = 15;
    ++probe_.probe_len[b];
  }
  void Rehash(std::size_t new_cap);

  std::vector<Cell> cells_;
  std::vector<std::uint64_t> pool_;
  std::size_t size_ = 0;        // full cells
  std::size_t used_ = 0;        // full + tombstoned cells
  std::size_t dead_words_ = 0;  // pool words owned by erased cells
  mutable ProbeStats probe_;
};

class CompiledEngine : public PropertyMonitor {
 public:
  /// Compiles internally; asserts the property is compilable (callers that
  /// need the fallback path go through CreatePropertyMonitor).
  explicit CompiledEngine(Property property, MonitorConfig config = {});
  /// Adopts a program already produced by CompileProperty(property).
  CompiledEngine(Property property, Program program, MonitorConfig config);

  CompiledEngine(const CompiledEngine&) = delete;
  CompiledEngine& operator=(const CompiledEngine&) = delete;

  void ProcessEvent(const DataplaneEvent& event) override;
  void AdvanceTime(SimTime now) override;
  void ProcessDispatchedEvent(const DataplaneEvent& event) override {
    ++stats_.events_dispatched;
    ProcessEvent(event);
  }
  void NoteFilteredEvent(SimTime now) override {
    ++stats_.events_filtered;
    AdvanceTime(now);
  }

  /// Instance-sharded delivery: runs only the passes `stage_mask` selects
  /// (see PropertyMonitor::ProcessShardedEvent).
  void ProcessShardedEvent(const DataplaneEvent& event,
                           std::uint64_t stage_mask, bool count) override;

  // --- native batch execution (PR 9) ---
  /// Staged whole-batch execution: (1) a key-extraction/hash pass computes
  /// each event's probe-site hashes once (or adopts the caller's fused
  /// rows), (2) the execute loop prefetches OpenMap cells — and, closer in,
  /// slab records — a fixed distance ahead, (3) each event then runs the
  /// unchanged scalar passes against warm lines, consuming the precomputed
  /// hashes via OpenMap::FindHashed. Event order, violations, counters and
  /// probe telemetry are bit-identical to the scalar loop.
  void ProcessEventBatch(const DataplaneEvent* events, std::size_t count,
                         const FusedKeyTable* fused,
                         BatchEventResult* results) override;
  void ProcessShardedBatch(const DataplaneEvent* events, std::size_t count,
                           const ShardedBatchOp* ops,
                           const FusedKeyTable* fused,
                           BatchEventResult* results) override;
  std::vector<ProbeKeyTuple> ProbeKeyTuples() const override;
  void BindFusedRows(std::vector<std::uint32_t> slots) override {
    fused_slots_ = std::move(slots);
  }
  /// Demands the fused slots whose probes are currently consumable: every
  /// stage-0/suppression site, and link-key sites only while their stage
  /// store holds instances (an empty store cannot be probed usefully, and
  /// an instance created mid-batch just hashes inline until next batch).
  void MarkConsumableFusedSlots(std::uint8_t* want) const override;
  /// How many events ahead the execute loop prefetches probe cells (slab
  /// records are peeked at half this distance). 0 disables prefetch;
  /// bench_batch ablates this knob. Purely advisory — never observable.
  void set_prefetch_distance(std::uint32_t d) { prefetch_dist_ = d; }
  std::uint32_t prefetch_distance() const { return prefetch_dist_; }

  std::uint64_t created_count() const override {
    return stats_.instances_created;
  }

  const Property& property() const override { return property_; }
  const Program& program() const { return prog_; }

  void CollectInto(telemetry::Snapshot& snap,
                   std::string_view name) const override;

  const std::vector<Violation>& violations() const override {
    return violations_;
  }
  std::vector<Violation> TakeViolations() override {
    return std::move(violations_);
  }
  std::size_t live_instances() const override { return live_count_; }
  SimTime now() const override { return now_; }
  std::size_t StateBytes() const override;

 private:
  /// Record word layout (stride_ = kWVars + num_vars).
  enum : std::uint32_t {
    kWId = 0,         // instance id
    kWCreated = 1,    // creation time, ns (bit pattern of SimTime nanos)
    kWSeq = 2,        // last event seq that advanced/created this instance
    kWStageMatch = 3, // stage (hi 32) | stage_matches (lo 32)
    kWBound = 4,      // bitmask of bound vars
    kWVars = 5,       // num_vars environment words
  };
  static constexpr std::uint32_t kDeadStage = 0xffffffffu;

  std::uint64_t* Rec(std::uint32_t slot) {
    return slab_.data() + static_cast<std::size_t>(slot) * stride_;
  }
  const std::uint64_t* Rec(std::uint32_t slot) const {
    return slab_.data() + static_cast<std::size_t>(slot) * stride_;
  }
  static std::uint32_t StageOf(const std::uint64_t* rec) {
    return static_cast<std::uint32_t>(rec[kWStageMatch] >> 32);
  }
  static std::uint32_t MatchesOf(const std::uint64_t* rec) {
    return static_cast<std::uint32_t>(rec[kWStageMatch]);
  }
  static void SetStageMatch(std::uint64_t* rec, std::uint32_t stage,
                            std::uint32_t matches) {
    rec[kWStageMatch] = (static_cast<std::uint64_t>(stage) << 32) | matches;
  }

  struct StageStore {
    OpenMap keyed;
    std::vector<std::uint32_t> scan;
  };

  // --- bytecode execution ---
  bool ExecMatch(std::uint32_t pc, const FieldMap& fields,
                 const std::uint64_t* vars, std::uint64_t bound) const;
  bool EvalCond(const Instr& i, const FieldMap& fields,
                const std::uint64_t* vars, std::uint64_t bound) const;
  /// Runs a bind run against the record env in place. Returns false (with
  /// no mutation — presence checks all precede the first bind) when a
  /// required field is absent.
  bool ExecBind(std::uint32_t pc, const FieldMap& fields, std::uint64_t* vars,
                std::uint64_t& bound);

  // --- instance lifecycle (mirrors of engine.cpp) ---
  std::uint32_t AllocSlot();
  void InsertIntoStore(std::uint32_t slot);
  void RemoveFromStore(std::uint32_t slot);
  void DestroyInstance(std::uint32_t slot);
  void AdvanceInstance(std::uint32_t slot, const DataplaneEvent* ev);
  void ArmWindow(std::uint32_t slot, const StageCode& completed,
                 const DataplaneEvent* ev);
  void ReportViolation(const std::uint64_t* rec, SimTime when,
                       const std::string& trigger,
                       std::uint32_t trigger_stage_index);
  void OnTimerExpiry(std::uint32_t slot, SimTime deadline);
  void EvictIfNeeded();
  /// Key of the stage-0 dedup index, built in key_buf_. Live records always
  /// have every stage-0 variable bound (stage 0's bind run bound them).
  void BuildStage0Key(const std::uint64_t* vars);

  // --- per-event passes ---
  /// The abort/advance/create/suppressor sequence shared by ProcessEvent
  /// (full mask) and ProcessShardedEvent (the replica's stage mask; bit 0
  /// gates create + suppressor).
  void RunPasses(const DataplaneEvent& ev, std::uint64_t stage_mask);
  /// Could RunCreatePass do anything observable for this event? False when
  /// the stage-0 type check or fail-fast rejects, or when a required
  /// (non-allow-absent) stage-0 pattern field is missing — the match then
  /// provably fails before any probe, counter, or bind. Used by the batch
  /// no-op fold.
  bool WouldEnterCreate(const DataplaneEvent& ev) const;
  /// Is RunSuppressorPass provably a no-op for this event? True when every
  /// suppressor's pattern either rejects the event type or requires a field
  /// the event lacks (its ExecMatch fails side-effect-free).
  bool SuppressorsInert(const DataplaneEvent& ev) const;
  /// Shared ctor tail: the stage-0 fail-fast and the required-presence
  /// masks the batch no-op fold consults.
  void InitFailFast();
  void RunAbortPass(const DataplaneEvent& ev, std::uint64_t stage_mask);
  void RunAdvancePass(const DataplaneEvent& ev, std::uint64_t stage_mask);
  void RunCreatePass(const DataplaneEvent& ev);
  void RunSuppressorPass(const DataplaneEvent& ev);

  // --- batch machinery ---
  /// One probe site whose OpenMap key is a pure projection of event
  /// fields: the stage-0 dedup index (when stage 0 binds only kBindField),
  /// the suppression set, and every linked advance-stage store. Built once
  /// at construction; ProbeKeyTuples() exposes the tuples in sites_ order.
  struct ProbeSite {
    enum Kind : std::uint8_t { kStage0, kSuppression, kLink };
    Kind kind;
    std::uint32_t stage = 0;  // kLink only
    std::vector<std::uint16_t> fields;
    std::uint64_t presence = 0;
    /// Event types whose per-event passes can reach the consuming probe —
    /// the hash pass skips (and the fused table never hashes) any other
    /// event, which is what keeps batch-mode hashing proportional to the
    /// work the scalar path would actually do.
    EventTypeMask types = 0;
  };
  void InitProbeSites();
  const OpenMap& SiteMap(const ProbeSite& s) const;
  /// Is this site's probe worth precomputing hashes for right now? An
  /// empty map can't satisfy any lookup, so a site demands rows only while
  /// its map holds entries — the occasional probe or insert against an
  /// empty map (e.g. the create pass touching a fresh dedup index) hashes
  /// inline through the SiteHash fallback, which is exactly the scalar
  /// path's cost. Advisory only: a stale answer degrades fusion, never
  /// correctness.
  bool SiteConsumable(const ProbeSite& s) const {
    return SiteMap(s).size() != 0;
  }
  /// Points site_rows_/site_valid_ at the caller's fused rows, or computes
  /// them locally (the hash pass) when no fused table is supplied.
  void BeginBatch(const DataplaneEvent* events, std::size_t count,
                  const FusedKeyTable* fused);
  void EndBatch();
  /// Issues the distance-ahead cell prefetches (and nearer record peeks)
  /// for the event at `i + prefetch_dist_` while `i` executes.
  void PrefetchAhead(std::size_t i);
  /// Per-event batch-site lookup helper: the precomputed hash for `site`
  /// at the current batch index. Returning false means only "no
  /// precomputed hash" — the consuming probe hashes inline exactly as
  /// scalar execution would, so the hash pass may under-approximate (skip
  /// events its gates judge unreachable) without affecting semantics.
  bool SiteHash(std::uint32_t site, std::uint64_t* h) const {
    if (site == kNoSite || !batch_active_ || site_rows_[site] == nullptr ||
        site_valid_[site][batch_i_] == 0)
      return false;
    *h = site_rows_[site][batch_i_];
    return true;
  }
  static constexpr std::uint32_t kNoSite = 0xffffffffu;

  Property property_;
  Program prog_;
  MonitorConfig config_;
  MonitorStats stats_;
  std::vector<Violation> violations_;

  SimTime now_ = SimTime::Zero();
  std::uint64_t event_seq_ = 0;
  std::uint64_t next_instance_id_ = 1;
  std::uint64_t rr_counter_ = 0;

  std::uint32_t stride_ = 0;
  std::vector<std::uint64_t> slab_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_count_ = 0;

  std::vector<StageStore> stores_;  // one per stage (index 0 unused)
  /// Stage-0 fail-fast: when the stage-0 pattern opens with a constant
  /// condition, a copy of that instruction is checked inline in
  /// ProcessEvent before paying the create-pass call. Identical to the
  /// first step ExecMatch would take, so skipping is unobservable.
  /// st0_fast_whole_ additionally records that this condition IS the whole
  /// pattern, letting the create pass skip its ExecMatch call outright.
  bool st0_fast_valid_ = false;
  bool st0_fast_whole_ = false;
  Instr st0_fast_{};
  /// Presence mask of every field a required (pre-kForbidden,
  /// non-allow-absent) stage-0 pattern condition reads: an event missing
  /// any of them provably fails the match — see WouldEnterCreate.
  std::uint64_t st0_need_ = 0;
  /// Per-suppressor inertness guards (type + required presence), same
  /// derivation as st0_need_ — see SuppressorsInert.
  struct SupGuard {
    std::int8_t event_type;
    std::uint64_t need;
  };
  std::vector<SupGuard> sup_guards_;
  OpenMap stage0_index_;
  OpenMap suppressed_;  // set: buckets unused

  struct EvictionEntry {
    std::uint64_t id;
    std::uint32_t slot;
  };
  /// Bounded-memory eviction, driven through the exact hook points the
  /// interpreter uses (monitor/eviction.hpp) — decisions are bit-identical
  /// by construction; the handle stored per id is the slab slot.
  EvictionConfig ecfg_;
  bool evict_enabled_ = false;
  EvictionState eviction_;
  std::uint64_t evictions_capacity_ = 0;
  std::uint64_t evictions_bytes_ = 0;
  TimerSet timers_;

  // Reused per-event scratch (what keeps the hot path allocation-free).
  std::vector<std::uint64_t> scratch_vars_;
  std::vector<std::uint64_t> key_buf_;
  std::vector<std::uint32_t> cand_;
  std::vector<EvictionEntry> victims_;

  // --- batch-mode state (set by BeginBatch, cleared by EndBatch) ---
  std::vector<ProbeSite> sites_;
  std::uint32_t site_stage0_ = kNoSite;
  std::uint32_t site_suppression_ = kNoSite;
  std::vector<std::uint32_t> site_of_stage_;  // per stage, kNoSite if none
  std::vector<std::uint32_t> fused_slots_;    // BindFusedRows, sites_ order
  bool batch_active_ = false;
  std::size_t batch_i_ = 0;
  const DataplaneEvent* batch_events_ = nullptr;
  std::size_t batch_count_ = 0;
  std::vector<const std::uint64_t*> site_rows_;
  std::vector<const std::uint8_t*> site_valid_;
  std::vector<std::uint64_t> own_rows_;  // hash pass output when not fused
  std::vector<std::uint8_t> own_valid_;
  /// Sites worth prefetching this batch (rows present and the probed map
  /// non-empty) — PrefetchAhead's loop runs over this instead of sites_.
  std::vector<std::uint32_t> pf_sites_;
  std::uint32_t prefetch_dist_ = 8;
};

}  // namespace swmon::compiled

namespace swmon {
using compiled::CompiledEngine;
}  // namespace swmon
