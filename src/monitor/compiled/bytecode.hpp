// Flat bytecode form of a Property, produced ahead of time by
// CompileProperty and executed by CompiledEngine.
//
// The lowering flattens every pattern (stage, abort, suppressor) into one
// contiguous instruction array — straight-line condition runs terminated
// by kMatch — and every stage's bindings into a validate-then-mutate run
// terminated by kBindEnd, so the hot path is a single indexed walk over
// `code` with no pointer chasing through the spec tree, no virtual
// dispatch, and no per-event heap traffic. Side tables (hash-input field
// pools, link terms, key-field pools) are slices into shared flat vectors
// addressed by (begin, count) pairs baked into the instructions and stage
// records.
//
// Pattern run layout (entry point PatternCode::begin):
//   kCond*...                 required conditions, any failure = no match
//   [kForbidden(aux=n) kCond*^n]   optional tuple-negation group: if all n
//                             forbidden conditions hold the pattern does
//                             NOT match (Feature 6 at tuple level)
//   kMatch                    pattern matched
//
// Bind run layout (entry point StageCode::bind_begin):
//   kRequireField...          presence checks for every field the stage's
//                             bindings (and window_from_field) consume —
//                             all validated before any mutation, so a
//                             failed bind never half-updates the env and
//                             never consumes a round-robin slot
//   kBindField | kBindHash | kBindRoundRobin ...
//   kBindEnd
//
// The program also precomputes, per DataplaneEventType, a bitmask of
// stages whose advance/abort patterns can react to that type, so
// ProcessEvent skips entire passes with one AND (this caps compilable
// properties at 64 stages; CreatePropertyMonitor falls back to the
// interpreter beyond that, and for >64 variables — the packed state
// record tracks boundness in one u64).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dataplane/switch.hpp"
#include "monitor/spec.hpp"

namespace swmon::compiled {

enum class Op : std::uint8_t {
  kCondConstEq,    // field ==/mask imm
  kCondConstNe,    // field !=/mask imm
  kCondVarEq,      // field ==/mask env[var]
  kCondVarNe,      // field !=/mask env[var]
  kForbidden,      // next `aux` conditions form the negated tuple
  kMatch,          // pattern end
  kRequireField,   // bind-run presence check
  kBindField,      // env[var] = event.field
  kBindHash,       // env[var] = FNV(aux_fields[aux_pos..+aux]) % modulus + base
  kBindRoundRobin, // env[var] = rr_counter++ % modulus + base
  kBindEnd,        // bind run end
};

/// Instr::flags bit: condition holds when the event lacks the field.
inline constexpr std::uint8_t kFlagAllowAbsent = 1;

struct Instr {
  Op op;
  std::uint8_t flags = 0;
  std::uint16_t field = 0;    // FieldId operand
  std::uint16_t var = 0;      // env slot (rhs var / bind target)
  std::uint16_t aux = 0;      // forbidden-run length / hash-input count
  std::uint32_t aux_pos = 0;  // slice start in Program::aux_fields
  std::uint32_t modulus = 1;
  std::uint32_t base = 0;
  std::uint64_t mask = ~std::uint64_t{0};
  std::uint64_t imm = 0;      // constant rhs
};

/// Entry point of one flattened pattern.
struct PatternCode {
  std::int8_t event_type = -1;  // -1 = any type; else DataplaneEventType
  std::uint32_t begin = 0;      // index into Program::code
};

/// field == $var link term; the slice [link_begin, link_begin+link_count)
/// of Program::links is a stage's keyed-store key, mirroring the
/// interpreter's StageStore::link (full-width, non-allow_absent equality
/// conditions only).
struct LinkTerm {
  std::uint16_t field;
  std::uint16_t var;
};

struct StageCode {
  StageKind kind = StageKind::kEvent;
  PatternCode pattern;              // kEvent stages
  std::uint32_t bind_begin = 0;
  bool has_bindings = false;        // stage can rebind env (re-key path)
  std::vector<PatternCode> aborts;
  std::uint32_t link_begin = 0;
  std::uint32_t link_count = 0;
  std::int64_t window_ns = 0;       // 0 = unbounded
  std::int16_t window_field = -1;   // FieldId overriding window_ns, -1 = none
  bool refresh_on_rematch = false;  // stage 0 only
  std::uint32_t min_count = 1;
  std::string label;
};

struct SuppressorCode {
  PatternCode pattern;
  std::uint32_t key_begin = 0;  // slice of Program::key_fields
  std::uint32_t key_count = 0;
};

struct Program {
  std::string name;
  std::vector<std::string> vars;  // VarId indexes this; names for reporting

  std::vector<Instr> code;
  std::vector<std::uint16_t> aux_fields;  // kBindHash input-field pool
  std::vector<StageCode> stages;
  std::vector<LinkTerm> links;
  /// Variables stage 0 binds, in binding order: the dedup/refresh key.
  std::vector<std::uint16_t> stage0_vars;
  /// True when every stage-0 binding is kBindField, making the dedup key a
  /// pure projection of event fields; stage0_key_fields then holds the
  /// source FieldIds in binding (= key) order. Batch mode precomputes — and
  /// fuses across properties — the stage-0 routing hash exactly when this
  /// holds (see fused_keys.hpp).
  bool stage0_key_pure = false;
  std::vector<std::uint16_t> stage0_key_fields;

  std::vector<SuppressorCode> suppressors;
  std::vector<std::uint16_t> key_fields;  // suppression key-field pool
  std::uint32_t suppression_key_begin = 0;
  std::uint32_t suppression_key_count = 0;

  EventTypeMask interest = 0;
  /// Bit k set when stage k's advance pattern / any abort pattern can
  /// react to the event type — the per-event pass-skip masks.
  std::uint64_t advance_stage_mask[kNumDataplaneEventTypes] = {};
  std::uint64_t abort_stage_mask[kNumDataplaneEventTypes] = {};

  std::size_t num_vars() const { return vars.size(); }
  std::size_t num_stages() const { return stages.size(); }
};

/// Lowers a validated Property. nullopt when the property exceeds the
/// compiled representation (more than 64 stages or 64 variables) — the
/// factory then falls back to the interpreter.
std::optional<Program> CompileProperty(const Property& property);

/// Human-readable listing (one instruction per line) for debugging
/// differential failures; format is stable enough for docs, not parsing.
std::string Disassemble(const Program& program);

}  // namespace swmon::compiled
