// Lowering from the Property spec tree to the flat bytecode Program.
//
// The compiler is deliberately boring: every choice that affects runtime
// observable behaviour (link-key selection, bind validation order,
// stage-0 key composition) replicates monitor/engine.cpp exactly — the
// differential harness holds the two engines to bit-identical violation
// streams, so any cleverness here must be invisible.

#include <string>

#include "common/assert.hpp"
#include "monitor/compiled/bytecode.hpp"
#include "monitor/features.hpp"

namespace swmon::compiled {

namespace {

Instr LowerCondition(const Condition& c) {
  Instr i{};
  const bool var_rhs = c.rhs.kind == Term::Kind::kVar;
  if (c.op == CmpOp::kEq)
    i.op = var_rhs ? Op::kCondVarEq : Op::kCondConstEq;
  else
    i.op = var_rhs ? Op::kCondVarNe : Op::kCondConstNe;
  i.field = static_cast<std::uint16_t>(c.field);
  i.var = c.rhs.var;
  i.mask = c.mask;
  i.imm = c.rhs.constant;
  if (c.allow_absent) i.flags |= kFlagAllowAbsent;
  return i;
}

PatternCode EmitPattern(const Pattern& p, Program& prog) {
  PatternCode pc;
  pc.event_type =
      p.event_type ? static_cast<std::int8_t>(*p.event_type) : std::int8_t{-1};
  pc.begin = static_cast<std::uint32_t>(prog.code.size());
  for (const Condition& c : p.conditions) prog.code.push_back(LowerCondition(c));
  if (!p.forbidden.empty()) {
    Instr f{};
    f.op = Op::kForbidden;
    f.aux = static_cast<std::uint16_t>(p.forbidden.size());
    prog.code.push_back(f);
    for (const Condition& c : p.forbidden)
      prog.code.push_back(LowerCondition(c));
  }
  Instr m{};
  m.op = Op::kMatch;
  prog.code.push_back(m);
  return pc;
}

void EmitRequire(FieldId field, Program& prog) {
  Instr r{};
  r.op = Op::kRequireField;
  r.field = static_cast<std::uint16_t>(field);
  prog.code.push_back(r);
}

/// Validate-then-mutate, mirroring MonitorEngine::ApplyBindings: every
/// presence check precedes every mutation, so a failed bind run leaves the
/// environment (and the round-robin counter) untouched.
std::uint32_t EmitBindRun(const Stage& st, Program& prog) {
  const auto begin = static_cast<std::uint32_t>(prog.code.size());
  for (const Binding& b : st.bindings) {
    if (b.kind == Binding::Kind::kField) EmitRequire(b.field, prog);
    if (b.kind == Binding::Kind::kHashPort)
      for (FieldId f : b.hash_inputs) EmitRequire(f, prog);
  }
  if (st.window_from_field) EmitRequire(*st.window_from_field, prog);

  for (const Binding& b : st.bindings) {
    Instr i{};
    i.var = b.var;
    i.modulus = b.modulus;
    i.base = b.base;
    switch (b.kind) {
      case Binding::Kind::kField:
        i.op = Op::kBindField;
        i.field = static_cast<std::uint16_t>(b.field);
        break;
      case Binding::Kind::kHashPort:
        i.op = Op::kBindHash;
        i.aux = static_cast<std::uint16_t>(b.hash_inputs.size());
        i.aux_pos = static_cast<std::uint32_t>(prog.aux_fields.size());
        for (FieldId f : b.hash_inputs)
          prog.aux_fields.push_back(static_cast<std::uint16_t>(f));
        break;
      case Binding::Kind::kRoundRobin:
        i.op = Op::kBindRoundRobin;
        break;
    }
    prog.code.push_back(i);
  }
  Instr e{};
  e.op = Op::kBindEnd;
  prog.code.push_back(e);
  return begin;
}

std::uint32_t EmitKeyFields(const std::vector<FieldId>& fields, Program& prog) {
  const auto begin = static_cast<std::uint32_t>(prog.key_fields.size());
  for (FieldId f : fields)
    prog.key_fields.push_back(static_cast<std::uint16_t>(f));
  return begin;
}

bool TypeCompatible(const PatternCode& pc, std::size_t type) {
  return pc.event_type < 0 ||
         static_cast<std::size_t>(pc.event_type) == type;
}

}  // namespace

std::optional<Program> CompileProperty(const Property& property) {
  // The per-type stage masks and the packed record's boundness word cap
  // the representation at 64 stages / 64 variables.
  if (property.num_stages() > 64 || property.num_vars() > 64)
    return std::nullopt;
  for (const Stage& st : property.stages)
    if (st.pattern.forbidden.size() > 0xffff) return std::nullopt;

  Program prog;
  prog.name = property.name;
  prog.vars = property.vars;
  prog.interest = InterestSignature(property);

  for (std::size_t k = 0; k < property.num_stages(); ++k) {
    const Stage& st = property.stages[k];
    StageCode sc;
    sc.kind = st.kind;
    sc.label = st.label;
    sc.min_count = st.min_count;
    sc.refresh_on_rematch = st.refresh_window_on_rematch;
    sc.window_ns = st.window.nanos();
    sc.window_field =
        st.window_from_field
            ? static_cast<std::int16_t>(*st.window_from_field)
            : std::int16_t{-1};
    if (st.kind == StageKind::kEvent) sc.pattern = EmitPattern(st.pattern, prog);
    sc.bind_begin = EmitBindRun(st, prog);
    sc.has_bindings = !st.bindings.empty();
    for (const Pattern& a : st.aborts) sc.aborts.push_back(EmitPattern(a, prog));

    // Link-key selection, identical to the MonitorEngine constructor: only
    // full-width, non-allow_absent equality against a variable can serve
    // as a hash key (an allow_absent condition also matches events that
    // *lack* the field, which a keyed lookup would never reach).
    sc.link_begin = static_cast<std::uint32_t>(prog.links.size());
    if (k >= 1 && st.kind == StageKind::kEvent) {
      for (const Condition& c : st.pattern.conditions) {
        if (c.op == CmpOp::kEq && c.rhs.kind == Term::Kind::kVar &&
            c.mask == ~std::uint64_t{0} && !c.allow_absent)
          prog.links.push_back(LinkTerm{static_cast<std::uint16_t>(c.field),
                                        c.rhs.var});
      }
    }
    sc.link_count =
        static_cast<std::uint32_t>(prog.links.size()) - sc.link_begin;
    prog.stages.push_back(std::move(sc));
  }

  for (const Binding& b : property.stages[0].bindings)
    prog.stage0_vars.push_back(b.var);

  // Stage-0 dedup key purity: when every stage-0 binding is a plain field
  // copy, the dedup key tuple (the stage0_vars values, in binding order) is
  // a pure projection of event fields — its hash can be computed before the
  // bind run even executes, which is what lets batch mode precompute (and
  // fuse across properties) the stage-0 routing hash. kBindHash is
  // event-pure too but its key word is a derived value, not a raw field, so
  // it cannot share a fused row; kBindRoundRobin is state-dependent. Either
  // one keeps the flag false and the engine hashes at the probe site.
  prog.stage0_key_pure = true;
  for (const Binding& b : property.stages[0].bindings) {
    if (b.kind != Binding::Kind::kField) {
      prog.stage0_key_pure = false;
      break;
    }
    prog.stage0_key_fields.push_back(static_cast<std::uint16_t>(b.field));
  }
  if (!prog.stage0_key_pure) prog.stage0_key_fields.clear();

  for (const Suppressor& sup : property.suppressors) {
    SuppressorCode sc;
    sc.pattern = EmitPattern(sup.pattern, prog);
    sc.key_begin = EmitKeyFields(sup.key_fields, prog);
    sc.key_count = static_cast<std::uint32_t>(sup.key_fields.size());
    prog.suppressors.push_back(sc);
  }
  prog.suppression_key_begin =
      EmitKeyFields(property.suppression_key_fields, prog);
  prog.suppression_key_count =
      static_cast<std::uint32_t>(property.suppression_key_fields.size());

  // Per-event-type pass-skip masks (the interpreter's per-stage type
  // prefilters, hoisted to one AND per ProcessEvent).
  for (std::size_t t = 0; t < kNumDataplaneEventTypes; ++t) {
    for (std::size_t k = 1; k < prog.stages.size(); ++k) {
      const StageCode& sc = prog.stages[k];
      if (sc.kind == StageKind::kEvent && TypeCompatible(sc.pattern, t))
        prog.advance_stage_mask[t] |= std::uint64_t{1} << k;
      for (const PatternCode& a : sc.aborts) {
        if (TypeCompatible(a, t)) {
          prog.abort_stage_mask[t] |= std::uint64_t{1} << k;
          break;
        }
      }
    }
  }
  return prog;
}

std::string Disassemble(const Program& program) {
  std::string out = "program " + program.name +
                    " vars=" + std::to_string(program.vars.size()) + "\n";
  for (std::size_t k = 0; k < program.stages.size(); ++k) {
    const StageCode& st = program.stages[k];
    out += "stage " + std::to_string(k) + " \"" + st.label + "\" pattern@" +
           std::to_string(st.pattern.begin) + " bind@" +
           std::to_string(st.bind_begin) + "\n";
  }
  const auto line = [&](std::size_t pc, const std::string& text) {
    out += std::to_string(pc);
    out += ":\t";
    out += text;
    out += '\n';
  };
  for (std::size_t pc = 0; pc < program.code.size(); ++pc) {
    const Instr& i = program.code[pc];
    const std::string field = "f" + std::to_string(i.field);
    const std::string var = "$" + std::to_string(i.var);
    const std::string absent =
        (i.flags & kFlagAllowAbsent) ? " allow_absent" : "";
    switch (i.op) {
      case Op::kCondConstEq:
        line(pc, "cond " + field + " == " + std::to_string(i.imm) + absent);
        break;
      case Op::kCondConstNe:
        line(pc, "cond " + field + " != " + std::to_string(i.imm) + absent);
        break;
      case Op::kCondVarEq:
        line(pc, "cond " + field + " == " + var + absent);
        break;
      case Op::kCondVarNe:
        line(pc, "cond " + field + " != " + var + absent);
        break;
      case Op::kForbidden:
        line(pc, "forbidden n=" + std::to_string(i.aux));
        break;
      case Op::kMatch:
        line(pc, "match");
        break;
      case Op::kRequireField:
        line(pc, "require " + field);
        break;
      case Op::kBindField:
        line(pc, "bind " + var + " = " + field);
        break;
      case Op::kBindHash:
        line(pc, "bind " + var + " = hash(" + std::to_string(i.aux) +
                     " fields) % " + std::to_string(i.modulus) + " + " +
                     std::to_string(i.base));
        break;
      case Op::kBindRoundRobin:
        line(pc, "bind " + var + " = rr % " + std::to_string(i.modulus) +
                     " + " + std::to_string(i.base));
        break;
      case Op::kBindEnd:
        line(pc, "bind_end");
        break;
    }
  }
  return out;
}

}  // namespace swmon::compiled
