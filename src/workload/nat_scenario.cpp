#include "workload/nat_scenario.hpp"

#include "packet/builder.hpp"
#include "packet/parser.hpp"
#include "properties/catalog.hpp"

namespace swmon {

ScenarioOutcome RunNatScenario(const NatScenarioConfig& config) {
  const ScenarioParams& sp = config.params;

  Network net;
  SoftSwitch& sw = net.AddSwitch(1, 2);
  NatConfig nc;
  nc.internal_port = sp.inside_port;
  nc.external_port = sp.outside_port;
  nc.public_ip = sp.nat_public_ip;
  nc.fault = config.fault;
  NatApp app(nc);
  sw.SetProgram(&app);

  Host& inside = net.AddHost("inside", TestMac(1), InternalIp(0));
  Host& outside = net.AddHost("outside", TestMac(2), ExternalIp(0));
  net.Attach(1, sp.inside_port, inside);
  net.Attach(1, sp.outside_port, outside);

  ScenarioOutcome out;
  out.monitors = std::make_unique<MonitorSet>();
  MonitorConfig mc;
  mc.provenance = config.options.provenance;
  out.monitors->Add(NatReverseTranslation(sp), mc);
  sw.AddObserver(out.monitors.get());
  if (config.options.keep_trace) {
    out.trace = std::make_unique<TraceRecorder>();
    sw.AddObserver(out.trace.get());
  }

  // The external peer echoes every delivered packet back to its source —
  // which, after translation, is (public_ip, P').
  std::size_t sent = 0;
  outside.SetReceiver([&](Host&, const Packet& pkt, SimTime at) {
    const ParsedPacket parsed = ParsePacket(pkt, ParseDepth::kL4);
    if (!parsed.valid || !parsed.ipv4 || !parsed.tcp) return;
    Packet reply = BuildTcp(TestMac(2), TestMac(1), parsed.ipv4->dst,
                            parsed.ipv4->src, parsed.tcp->dst_port,
                            parsed.tcp->src_port, kTcpAck);
    net.SendFromHost(outside, std::move(reply), at + Duration::Millis(1));
    ++sent;
  });

  SimTime horizon = SimTime::Zero();
  for (std::size_t f = 0; f < config.flows; ++f) {
    const Ipv4Addr a = InternalIp(static_cast<std::uint32_t>(f % 30));
    const Ipv4Addr b = ExternalIp(0);
    const std::uint16_t sport = static_cast<std::uint16_t>(20000 + f);
    for (std::size_t x = 0; x < config.exchanges_per_flow; ++x) {
      const SimTime at = SimTime::Zero() + Duration::Seconds(1) +
                         config.mean_gap * static_cast<int>(f) +
                         Duration::Millis(50) * static_cast<int>(x);
      net.SendFromHost(
          inside,
          BuildTcp(TestMac(1), TestMac(2), a, b, sport, 443,
                   x == 0 ? kTcpSyn : kTcpAck),
          at);
      ++sent;
      horizon = std::max(horizon, at);
    }
  }

  net.Run();
  const SimTime end = horizon + Duration::Seconds(1);
  net.RunUntil(end);
  out.monitors->AdvanceTime(end);
  out.switch_costs = SwitchCostsFromTelemetry(sw);
  out.packets_injected = sent;
  out.end_time = end;
  return out;
}

}  // namespace swmon
