// The canonical scenario for each catalog property: which workload
// exercises it and which fault makes the monitored device violate it.
// Shared by bench_table1 (detection confirmation) and the cross-backend
// parity tests.
#pragma once

#include <string>

#include "workload/scenario_common.hpp"

namespace swmon {

/// Runs the scenario that exercises `property_name` — faulted (the device
/// misbehaves in exactly the way the property watches for) or correct.
/// Returns the outcome with monitors attached; unknown names yield an
/// outcome with zero packets.
ScenarioOutcome RunScenarioForProperty(const std::string& property_name,
                                       bool faulted,
                                       ScenarioOptions options = {});

}  // namespace swmon
