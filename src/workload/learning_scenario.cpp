#include "workload/learning_scenario.hpp"

#include <vector>

#include "packet/builder.hpp"
#include "properties/catalog.hpp"

namespace swmon {

ScenarioOutcome RunLearningScenario(const LearningScenarioConfig& config) {
  const ScenarioParams& sp = config.params;
  Rng rng(config.options.seed);

  Network net;
  SoftSwitch& sw = net.AddSwitch(1, config.hosts);
  LearningSwitchApp app(config.fault);
  sw.SetProgram(&app);

  std::vector<Host*> hosts;
  for (std::uint32_t h = 0; h < config.hosts; ++h) {
    Host& host = net.AddHost("h" + std::to_string(h + 1), TestMac(h + 1),
                             InternalIp(h));
    net.Attach(1, PortId{h + 1}, host);
    hosts.push_back(&host);
  }

  ScenarioOutcome out;
  out.monitors = std::make_unique<MonitorSet>();
  MonitorConfig mc;
  mc.provenance = config.options.provenance;
  out.monitors->Add(LearningSwitchNoFloodAfterLearn(sp), mc);
  out.monitors->Add(LearningSwitchCorrectPort(sp), mc);
  out.monitors->Add(LearningSwitchLinkDownFlush(sp), mc);
  sw.AddObserver(out.monitors.get());
  if (config.options.keep_trace) {
    out.trace = std::make_unique<TraceRecorder>();
    sw.AddObserver(out.trace.get());
  }

  std::size_t sent = 0;
  SimTime at = SimTime::Zero() + Duration::Millis(100);
  auto send = [&](std::uint32_t from, std::uint32_t to) {
    Packet pkt = BuildIcmpEcho(TestMac(from + 1), TestMac(to + 1),
                               InternalIp(from), InternalIp(to),
                               /*is_request=*/true, 1,
                               static_cast<std::uint16_t>(sent));
    net.SendFromHost(*hosts[from], std::move(pkt), at);
    ++sent;
    at = at + config.mean_gap;
  };

  // Announcement round: everyone broadcasts once (gets learned).
  for (std::uint32_t h = 0; h < config.hosts; ++h) {
    Packet hello = BuildArpRequest(TestMac(h + 1), InternalIp(h),
                                   InternalIp((h + 1) % config.hosts));
    net.SendFromHost(*hosts[h], std::move(hello), at);
    ++sent;
    at = at + config.mean_gap;
  }

  for (std::size_t r = 0; r < config.rounds; ++r) {
    if (config.inject_link_down && r == config.rounds / 2) {
      // Take one link down and bring it back: learned state must flush.
      const PortId victim{1 +
                          static_cast<std::uint32_t>(rng.NextBelow(config.hosts))};
      net.SetLinkState(1, victim, false, at);
      at = at + config.mean_gap;
      net.SetLinkState(1, victim, true, at);
      at = at + config.mean_gap;
    }
    for (std::uint32_t h = 0; h < config.hosts; ++h) {
      const std::uint32_t peer =
          static_cast<std::uint32_t>(rng.NextBelow(config.hosts - 1));
      send(h, peer >= h ? peer + 1 : peer);
    }
  }

  net.Run();
  const SimTime end = at + Duration::Seconds(1);
  net.RunUntil(end);
  out.monitors->AdvanceTime(end);
  out.switch_costs = SwitchCostsFromTelemetry(sw);
  out.packets_injected = sent;
  out.end_time = end;
  return out;
}

}  // namespace swmon
