#include "workload/portknock_scenario.hpp"

#include "packet/builder.hpp"
#include "properties/catalog.hpp"

namespace swmon {

ScenarioOutcome RunPortKnockScenario(const PortKnockScenarioConfig& config) {
  const ScenarioParams& sp = config.params;

  Network net;
  SoftSwitch& sw = net.AddSwitch(1, 2);
  PortKnockConfig kc;
  kc.knock_ports = {sp.knock1, sp.knock2, sp.knock3};
  kc.protected_port = sp.protected_port;
  kc.client_port = PortId{1};
  kc.server_port = PortId{2};
  kc.fault = config.fault;
  PortKnockGateApp app(kc);
  sw.SetProgram(&app);

  Host& client = net.AddHost("client", TestMac(1), InternalIp(0));
  Host& server = net.AddHost("server", TestMac(2), InternalIp(100));
  net.Attach(1, PortId{1}, client);
  net.Attach(1, PortId{2}, server);

  ScenarioOutcome out;
  out.monitors = std::make_unique<MonitorSet>();
  MonitorConfig mc;
  mc.provenance = config.options.provenance;
  out.monitors->Add(PortKnockInvalidation(sp), mc);
  out.monitors->Add(PortKnockRecognize(sp), mc);
  sw.AddObserver(out.monitors.get());
  if (config.options.keep_trace) {
    out.trace = std::make_unique<TraceRecorder>();
    sw.AddObserver(out.trace.get());
  }

  std::size_t sent = 0;
  SimTime at = SimTime::Zero() + Duration::Millis(100);
  std::uint32_t next_client_ip = 0;

  auto knock = [&](Ipv4Addr src, std::uint16_t port) {
    net.SendFromHost(client,
                     BuildUdp(TestMac(1), TestMac(2), src, server.ip(),
                              40000, port),
                     at);
    ++sent;
    at = at + config.mean_gap;
  };
  auto ssh_attempt = [&](Ipv4Addr src) {
    net.SendFromHost(client,
                     BuildTcp(TestMac(1), TestMac(2), src, server.ip(), 40001,
                              sp.protected_port, kTcpSyn),
                     at);
    ++sent;
    at = at + config.mean_gap;
  };

  // Each session uses a fresh client address, so sessions are independent
  // monitor instances.
  for (std::size_t s = 0; s < config.clean_sessions; ++s) {
    const Ipv4Addr src = InternalIp(next_client_ip++);
    knock(src, sp.knock1);
    knock(src, sp.knock2);
    knock(src, sp.knock3);
    ssh_attempt(src);  // must be forwarded
  }
  for (std::size_t s = 0; s < config.corrupted_sessions; ++s) {
    const Ipv4Addr src = InternalIp(next_client_ip++);
    knock(src, sp.knock1);
    knock(src, 7003);  // intervening wrong guess (in-region, never correct)
    knock(src, sp.knock2);
    knock(src, sp.knock3);
    ssh_attempt(src);  // must be dropped
  }

  net.Run();
  const SimTime end = at + Duration::Seconds(1);
  net.RunUntil(end);
  out.monitors->AdvanceTime(end);
  out.switch_costs = SwitchCostsFromTelemetry(sw);
  out.packets_injected = sent;
  out.end_time = end;
  return out;
}

}  // namespace swmon
