// FTP workload (drives Table-1 row T1.8, taken from FAST).
//
// Scripted active-mode FTP sessions: the client announces a data endpoint
// with PORT on the control channel; the server then opens the data
// connection from port 20 to the announced port — or, when violations are
// injected, to the wrong one. Sessions optionally re-announce (a second
// PORT supersedes the first).
#pragma once

#include "workload/scenario_common.hpp"

namespace swmon {

struct FtpScenarioConfig {
  ScenarioOptions options;
  ScenarioParams params;

  std::size_t sessions = 10;
  /// Also run passive-mode sessions: the SERVER announces the data
  /// endpoint (227 reply) and the CLIENT connects to it. Exercises the
  /// PASV parser path and the mirror-image property.
  std::size_t passive_sessions = 0;
  /// Fraction of sessions whose data connection targets the wrong port.
  double violation_fraction = 0.0;
  /// Fraction of sessions that send a second PORT before the data
  /// connection (which then targets the NEW port — legitimate).
  double reannounce_fraction = 0.3;
  Duration mean_gap = Duration::Millis(30);
};

ScenarioOutcome RunFtpScenario(const FtpScenarioConfig& config);

/// Passive-mode mirror of Table 1's T1.8 (not a published row; included
/// for symmetry): the client's data connection must target the port the
/// server's 227 reply announced. Announced ports live in the masked
/// region [60000, 60016).
Property FtpPassiveDataPort();

}  // namespace swmon
