#include "workload/firewall_scenario.hpp"

#include "packet/builder.hpp"
#include "properties/catalog.hpp"

namespace swmon {

ScenarioOutcome RunFirewallScenario(const FirewallScenarioConfig& config) {
  const ScenarioParams& sp = config.params;
  Rng rng(config.options.seed);

  Network net;
  SoftSwitch& sw = net.AddSwitch(1, 2);
  FirewallConfig fw;
  fw.internal_ports = {sp.inside_port};
  fw.external_port = sp.outside_port;
  fw.idle_timeout = sp.firewall_timeout;
  fw.fault = config.fault;
  StatefulFirewallApp app(fw);
  sw.SetProgram(&app);

  Host& inside = net.AddHost("inside", TestMac(1), InternalIp(0));
  Host& outside = net.AddHost("outside", TestMac(2), ExternalIp(0));
  net.Attach(1, sp.inside_port, inside);
  net.Attach(1, sp.outside_port, outside);

  ScenarioOutcome out;
  out.monitors = std::make_unique<MonitorSet>();
  MonitorConfig mc;
  mc.provenance = config.options.provenance;
  out.monitors->Add(FirewallReturnNotDropped(sp), mc);
  out.monitors->Add(FirewallReturnNotDroppedTimeout(sp), mc);
  out.monitors->Add(FirewallReturnNotDroppedObligation(sp), mc);
  sw.AddObserver(out.monitors.get());
  if (config.options.keep_trace) {
    out.trace = std::make_unique<TraceRecorder>();
    sw.AddObserver(out.trace.get());
  }

  const Duration gap = config.mean_gap;
  SimTime horizon = SimTime::Zero();
  std::size_t sent = 0;

  auto send_out = [&](Ipv4Addr a, Ipv4Addr b, std::uint16_t sport,
                      std::uint8_t flags, SimTime at) {
    net.SendFromHost(inside,
                     BuildTcp(TestMac(1), TestMac(2), a, b, sport, 443, flags),
                     at);
    ++sent;
    horizon = std::max(horizon, at);
  };
  auto send_in = [&](Ipv4Addr a, Ipv4Addr b, std::uint16_t sport,
                     std::uint8_t flags, SimTime at) {
    net.SendFromHost(outside,
                     BuildTcp(TestMac(2), TestMac(1), b, a, 443, sport, flags),
                     at);
    ++sent;
    horizon = std::max(horizon, at);
  };

  for (std::size_t c = 0; c < config.connections; ++c) {
    const Ipv4Addr a = InternalIp(static_cast<std::uint32_t>(c % 50));
    const Ipv4Addr b = ExternalIp(static_cast<std::uint32_t>(c % 40));
    const std::uint16_t sport = static_cast<std::uint16_t>(10000 + c);
    const SimTime base =
        SimTime::Zero() + Duration::Seconds(1) + gap * static_cast<int>(c);

    send_out(a, b, sport, kTcpSyn, base);
    SimTime last_out = base;

    // Return traffic while established.
    for (std::size_t i = 0; i < config.return_packets_per_conn; ++i)
      send_in(a, b, sport, kTcpAck, base + gap * static_cast<int>(i + 1));

    const bool closes = rng.NextBool(config.close_fraction);
    const bool stale = !closes && rng.NextBool(config.stale_return_fraction);

    if (config.fault == FirewallFault::kNoRefreshOnTraffic && c % 4 == 0) {
      // Probe Feature 3's refresh semantics: a second outbound packet late
      // in the window, then a return that is inside the refreshed window
      // but outside the original one.
      const Duration t = sp.firewall_timeout;
      send_out(a, b, sport, kTcpAck, base + t * 5 / 6);
      last_out = base + t * 5 / 6;
      send_in(a, b, sport, kTcpAck, base + t * 7 / 6);
    }

    if (closes) {
      const SimTime close_at =
          base + gap * static_cast<int>(config.return_packets_per_conn + 2);
      send_out(a, b, sport, kTcpFin | kTcpAck, close_at);
      // A straggler return after the close: must be dropped, and the
      // obligation property must stay quiet about the drop.
      send_in(a, b, sport, kTcpAck, close_at + gap);
    } else if (stale) {
      // A return after the idle timeout: dropped, and the timeout property
      // must stay quiet.
      send_in(a, b, sport, kTcpAck,
              last_out + sp.firewall_timeout + Duration::Seconds(1));
    }
  }

  net.Run();
  const SimTime end = horizon + sp.firewall_timeout + Duration::Seconds(2);
  net.RunUntil(end);
  out.monitors->AdvanceTime(end);
  out.switch_costs = SwitchCostsFromTelemetry(sw);
  out.packets_injected = sent;
  out.end_time = end;
  return out;
}

}  // namespace swmon
