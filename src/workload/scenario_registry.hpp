// Named scenario registry.
//
// One string-keyed factory over every workload generator in the repo: the
// nine device scenarios (firewall, NAT, learning switch, ARP proxy, port
// knocking, load balancer, FTP, DHCP, DHCP+ARP) plus the adversarial
// state-exhaustion family ("adversarial:<stream>"). Benches, trace_replay
// record, and swmond trace generation all resolve scenarios here instead
// of hard-coding per-scenario plumbing.
#pragma once

#include <string>
#include <vector>

#include "workload/scenario_common.hpp"

namespace swmon {

struct ScenarioEntry {
  std::string name;         // registry key, e.g. "firewall"
  std::string description;  // one line for --list output
  /// Catalog properties the faulted run violates (the first is the one the
  /// scenario primarily targets).
  std::vector<std::string> properties;
};

/// Every registered scenario, in a fixed order.
const std::vector<ScenarioEntry>& ScenarioRegistryEntries();

bool HasScenario(const std::string& name);

/// Runs scenario `name`. For device scenarios `faulted` selects the
/// misbehaving implementation; adversarial streams are inherently faulted
/// and ignore it. The outcome's MonitorSet has the targeted properties
/// attached (unbounded); pass keep_trace to capture the event stream.
/// Unknown names return an outcome with zero packets (mirrors
/// RunScenarioForProperty).
ScenarioOutcome RunScenarioByName(const std::string& name, bool faulted,
                                  ScenarioOptions options = {});

}  // namespace swmon
