// Stateful-firewall workload (drives the Sec 2.1 properties).
//
// Internal hosts open TCP connections to external hosts through the
// firewall; external peers send return traffic while the connection is
// live, after it closes, and after the idle timeout. A correct firewall
// produces zero violations of all three firewall properties; each fault
// produces violations of the property that targets it.
#pragma once

#include "apps/stateful_firewall.hpp"
#include "workload/scenario_common.hpp"

namespace swmon {

struct FirewallScenarioConfig {
  ScenarioOptions options;
  ScenarioParams params;
  FirewallFault fault = FirewallFault::kNone;

  std::size_t connections = 20;
  std::size_t return_packets_per_conn = 3;
  /// Fraction of connections closed (FIN) before their last return packet.
  double close_fraction = 0.3;
  /// Fraction of connections whose peer sends one more return packet after
  /// the idle timeout has expired (must be dropped — and must NOT alarm).
  double stale_return_fraction = 0.2;
  Duration mean_gap = Duration::Millis(20);
};

ScenarioOutcome RunFirewallScenario(const FirewallScenarioConfig& config);

}  // namespace swmon
