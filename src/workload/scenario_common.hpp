// Shared plumbing for scenario runners.
//
// Every scenario follows the same shape: build a Network with one switch
// running the app under test, attach a MonitorSet (and optionally a
// TraceRecorder), script deterministic traffic from a seed, run the event
// queue past every monitor deadline, and hand back the outcome.
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "monitor/monitor_set.hpp"
#include "netsim/network.hpp"
#include "netsim/trace.hpp"
#include "properties/scenario.hpp"

namespace swmon {

struct ScenarioOutcome {
  std::unique_ptr<MonitorSet> monitors;
  std::unique_ptr<TraceRecorder> trace;  // null unless keep_trace
  CostCounters switch_costs;
  std::size_t packets_injected = 0;
  SimTime end_time;

  std::size_t TotalViolations() const { return monitors->TotalViolations(); }

  /// Violations of one property by name (0 if the property isn't attached).
  std::size_t ViolationsOf(const std::string& property) const {
    std::size_t n = 0;
    for (const auto& v : monitors->AllViolations())
      if (v.property == property) ++n;
    return n;
  }
};

/// Options common to all scenarios.
struct ScenarioOptions {
  std::uint64_t seed = 1;
  ProvenanceLevel provenance = ProvenanceLevel::kLimited;
  bool keep_trace = false;
  /// Traffic-volume multiplier applied to the scenario's primary knob
  /// (flows / sessions / clients / rounds) by RunScenarioForProperty, so
  /// registry callers (benches) can size workloads without per-scenario
  /// config structs. 1 = the scenario's documented default volume.
  std::size_t scale = 1;
};

/// Snapshot-backed read of a switch's modeled cost totals — the telemetry
/// replacement for the deprecated SoftSwitch::counters() accessor; scenario
/// runners use it to fill ScenarioOutcome::switch_costs.
inline CostCounters SwitchCostsFromTelemetry(const SoftSwitch& sw) {
  const telemetry::Snapshot snap = sw.TelemetrySnapshot();
  const std::string prefix =
      "dataplane.switch." + std::to_string(sw.switch_id()) + ".";
  CostCounters c;
  c.packets = snap.counter(prefix + "packets");
  c.table_lookups = snap.counter(prefix + "table_lookups");
  c.state_table_ops = snap.counter(prefix + "state_table_ops");
  c.register_ops = snap.counter(prefix + "register_ops");
  c.flow_mods = snap.counter(prefix + "flow_mods");
  c.controller_msgs = snap.counter(prefix + "controller_msgs");
  c.processing_time = Duration::Nanos(
      static_cast<std::int64_t>(snap.counter(prefix + "processing_ns")));
  return c;
}

/// Test addresses: host index -> distinct MAC / IP in 10.0.0.0/16 (internal)
/// or 198.51.100.0/24 (external).
inline MacAddr TestMac(std::uint32_t i) {
  return MacAddr(0x020000000000ULL | i);
}
inline Ipv4Addr InternalIp(std::uint32_t i) {
  return Ipv4Addr(0x0a000000u + 1 + i);  // 10.0.x.y
}
inline Ipv4Addr ExternalIp(std::uint32_t i) {
  return Ipv4Addr(0xc6336400u + 1 + i);  // 198.51.100.z
}

}  // namespace swmon
