// Shared plumbing for scenario runners.
//
// Every scenario follows the same shape: build a Network with one switch
// running the app under test, attach a MonitorSet (and optionally a
// TraceRecorder), script deterministic traffic from a seed, run the event
// queue past every monitor deadline, and hand back the outcome.
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "monitor/monitor_set.hpp"
#include "netsim/network.hpp"
#include "netsim/trace.hpp"
#include "properties/scenario.hpp"

namespace swmon {

struct ScenarioOutcome {
  std::unique_ptr<MonitorSet> monitors;
  std::unique_ptr<TraceRecorder> trace;  // null unless keep_trace
  CostCounters switch_costs;
  std::size_t packets_injected = 0;
  SimTime end_time;

  std::size_t TotalViolations() const { return monitors->TotalViolations(); }

  /// Violations of one property by name (0 if the property isn't attached).
  std::size_t ViolationsOf(const std::string& property) const {
    std::size_t n = 0;
    for (const auto& v : monitors->AllViolations())
      if (v.property == property) ++n;
    return n;
  }
};

/// Options common to all scenarios.
struct ScenarioOptions {
  std::uint64_t seed = 1;
  ProvenanceLevel provenance = ProvenanceLevel::kLimited;
  bool keep_trace = false;
};

/// Test addresses: host index -> distinct MAC / IP in 10.0.0.0/16 (internal)
/// or 198.51.100.0/24 (external).
inline MacAddr TestMac(std::uint32_t i) {
  return MacAddr(0x020000000000ULL | i);
}
inline Ipv4Addr InternalIp(std::uint32_t i) {
  return Ipv4Addr(0x0a000000u + 1 + i);  // 10.0.x.y
}
inline Ipv4Addr ExternalIp(std::uint32_t i) {
  return Ipv4Addr(0xc6336400u + 1 + i);  // 198.51.100.z
}

}  // namespace swmon
