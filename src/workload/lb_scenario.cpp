#include "workload/lb_scenario.hpp"

#include "packet/builder.hpp"
#include "properties/catalog.hpp"

namespace swmon {

ScenarioOutcome RunLbScenario(const LbScenarioConfig& config) {
  const ScenarioParams& sp = config.params;

  Network net;
  SoftSwitch& sw =
      net.AddSwitch(1, 1 + sp.lb_server_count);  // port 1 + servers
  LoadBalancerConfig lc;
  lc.client_port = sp.lb_client_port;
  lc.first_server_port = sp.lb_first_server_port;
  lc.server_count = sp.lb_server_count;
  lc.mode = config.mode;
  lc.fault = config.fault;
  LoadBalancerApp app(lc);
  sw.SetProgram(&app);

  Host& client = net.AddHost("clients", TestMac(1), InternalIp(0));
  net.Attach(1, sp.lb_client_port, client);
  for (std::uint32_t s = 0; s < sp.lb_server_count; ++s) {
    Host& server = net.AddHost("server" + std::to_string(s + 1),
                               TestMac(100 + s), ExternalIp(s));
    net.Attach(1, PortId{sp.lb_first_server_port + s}, server);
  }

  ScenarioOutcome out;
  out.monitors = std::make_unique<MonitorSet>();
  MonitorConfig mc;
  mc.provenance = config.options.provenance;
  out.monitors->Add(config.mode == LbMode::kHash ? LbHashedPort(sp)
                                                 : LbRoundRobinPort(sp),
                    mc);
  out.monitors->Add(LbStickyPort(sp), mc);
  sw.AddObserver(out.monitors.get());
  if (config.options.keep_trace) {
    out.trace = std::make_unique<TraceRecorder>();
    sw.AddObserver(out.trace.get());
  }

  const Ipv4Addr vip(203, 0, 113, 80);
  std::size_t sent = 0;
  SimTime at = SimTime::Zero() + Duration::Millis(100);
  auto send = [&](Ipv4Addr src, std::uint16_t sport, std::uint8_t flags) {
    net.SendFromHost(client,
                     BuildTcp(TestMac(1), TestMac(100), src, vip, sport, 80,
                              flags),
                     at);
    ++sent;
    at = at + config.mean_gap;
  };

  for (std::size_t f = 0; f < config.flows; ++f) {
    const Ipv4Addr src = InternalIp(static_cast<std::uint32_t>(f % 10));
    const std::uint16_t sport = static_cast<std::uint16_t>(30000 + f);
    send(src, sport, kTcpSyn);
    for (std::size_t i = 0; i < config.data_packets_per_flow; ++i)
      send(src, sport, kTcpAck);
    send(src, sport, kTcpFin | kTcpAck);
  }

  net.Run();
  const SimTime end = at + Duration::Seconds(1);
  net.RunUntil(end);
  out.monitors->AdvanceTime(end);
  out.switch_costs = SwitchCostsFromTelemetry(sw);
  out.packets_injected = sent;
  out.end_time = end;
  return out;
}

}  // namespace swmon
