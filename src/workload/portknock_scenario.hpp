// Port-knocking workload (drives Table-1 rows T1.3/T1.4).
//
// Clients run knock sessions against the gate: clean sequences (the gate
// must open) and corrupted sequences containing an intervening wrong guess
// (the gate must stay closed). After each session the client attempts a
// TCP connection to the protected port.
#pragma once

#include "apps/port_knocking.hpp"
#include "workload/scenario_common.hpp"

namespace swmon {

struct PortKnockScenarioConfig {
  ScenarioOptions options;
  ScenarioParams params;
  PortKnockFault fault = PortKnockFault::kNone;

  std::size_t clean_sessions = 5;
  std::size_t corrupted_sessions = 5;
  Duration mean_gap = Duration::Millis(20);
};

ScenarioOutcome RunPortKnockScenario(const PortKnockScenarioConfig& config);

}  // namespace swmon
