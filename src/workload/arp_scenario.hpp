// ARP proxy workload (drives Sec 2.3 and Table-1 rows T1.1/T1.2/T1.13).
//
// Hosts resolve each other through the proxy. Each host answers only the
// FIRST request for its address itself (afterwards it is "quiet", modeling
// a host whose reachability now depends on the proxy cache) — so a proxy
// that stops answering is observable as missing replies, not masked by the
// real host.
#pragma once

#include "apps/arp_proxy.hpp"
#include "workload/scenario_common.hpp"

namespace swmon {

struct ArpScenarioConfig {
  ScenarioOptions options;
  ScenarioParams params;
  ArpProxyFault fault = ArpProxyFault::kNone;

  std::uint32_t hosts = 4;
  /// Requests per target after its mapping is learned.
  std::size_t repeat_requests = 3;
  Duration mean_gap = Duration::Millis(50);
};

ScenarioOutcome RunArpScenario(const ArpScenarioConfig& config);

}  // namespace swmon
