// Learning-switch workload (drives the Sec 1 and Sec 2.4 properties).
//
// Hosts on distinct ports exchange unicast traffic after announcing
// themselves; optional link-down events exercise the multiple-match
// property.
#pragma once

#include "apps/learning_switch.hpp"
#include "workload/scenario_common.hpp"

namespace swmon {

struct LearningScenarioConfig {
  ScenarioOptions options;
  ScenarioParams params;
  LearningSwitchFault fault = LearningSwitchFault::kNone;

  std::uint32_t hosts = 6;  // one per port
  std::size_t rounds = 10;  // each round: every host sends to a random peer
  bool inject_link_down = false;
  Duration mean_gap = Duration::Millis(5);
};

ScenarioOutcome RunLearningScenario(const LearningScenarioConfig& config);

}  // namespace swmon
