// Scripted DHCP server agent.
//
// Runs as a Host receive callback: answers DISCOVER with OFFER and REQUEST
// with ACK, allocating addresses from a pool keyed by client hardware
// address; RELEASE frees. Faults produce the violations the three Table-1
// DHCP properties catch.
#pragma once

#include <unordered_map>
#include <vector>

#include "netsim/network.hpp"
#include "packet/dhcp.hpp"

namespace swmon {

enum class DhcpServerFault {
  kNone,
  kSlowReply,           // ACK after the monitoring deadline (T1.9)
  kNoReply,             // never ACKs (T1.9)
  kReuseLeasedAddress,  // hands the same address to every client (T1.10)
};

struct DhcpServerAgentConfig {
  Ipv4Addr pool_base = Ipv4Addr(10, 1, 0, 10);
  std::uint32_t pool_size = 64;
  std::uint32_t lease_secs = 60;
  Duration reply_delay = Duration::Millis(5);
  Duration slow_reply_delay = Duration::Seconds(10);
  /// A well-behaved server ignores REQUESTs addressed (via option 54) to a
  /// different server; a misconfigured one answers anyway — the T1.11
  /// overlap scenario.
  bool respect_server_id = true;
  DhcpServerFault fault = DhcpServerFault::kNone;
};

class DhcpServerAgent {
 public:
  /// Installs itself as `host`'s receiver. `host.ip()` is the server id.
  DhcpServerAgent(Network& net, Host& host, DhcpServerAgentConfig config);

  std::size_t leases() const { return by_client_.size(); }

 private:
  void OnPacket(Host& self, const Packet& pkt, SimTime at);
  Ipv4Addr Allocate(MacAddr chaddr);
  void Reply(Host& self, SimTime at, const DhcpMessage& reply, MacAddr dst);

  Network& net_;
  DhcpServerAgentConfig config_;
  std::unordered_map<std::uint64_t, std::uint32_t> by_client_;  // mac -> addr
  std::vector<std::uint32_t> free_list_;
  std::uint32_t next_offset_ = 0;
};

}  // namespace swmon
