// Load-balancer workload (drives Table-1 rows T1.5/T1.6/T1.7).
//
// Client flows (SYN, data packets, FIN) arrive on the client port and must
// be pinned to the hash- or round-robin-selected server port until close.
#pragma once

#include "apps/load_balancer.hpp"
#include "workload/scenario_common.hpp"

namespace swmon {

struct LbScenarioConfig {
  ScenarioOptions options;
  ScenarioParams params;
  LoadBalancerFault fault = LoadBalancerFault::kNone;
  LbMode mode = LbMode::kHash;

  std::size_t flows = 24;
  std::size_t data_packets_per_flow = 3;
  Duration mean_gap = Duration::Millis(10);
};

ScenarioOutcome RunLbScenario(const LbScenarioConfig& config);

}  // namespace swmon
