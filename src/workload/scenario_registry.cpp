#include "workload/scenario_registry.hpp"

#include <memory>
#include <string_view>
#include <utility>

#include "workload/adversarial/adversarial.hpp"
#include "workload/property_scenarios.hpp"

namespace swmon {
namespace {

/// Adversarial streams are raw event streams (no simulated network): feed
/// the targeted property directly and count arrivals as injected packets.
ScenarioOutcome RunAdversarialByName(const std::string& stream_name,
                                     const ScenarioOptions& options) {
  AdversarialParams ap;
  ap.seed = options.seed;
  AdversarialStream stream = MakeAdversarialStream(stream_name, ap);

  ScenarioOutcome out;
  out.monitors = std::make_unique<MonitorSet>();
  MonitorConfig cfg;
  cfg.provenance = options.provenance;
  out.monitors->Add(stream.property, cfg);
  if (options.keep_trace) out.trace = std::make_unique<TraceRecorder>();

  for (const DataplaneEvent& ev : stream.events) {
    if (ev.type == DataplaneEventType::kArrival) ++out.packets_injected;
    if (out.trace) out.trace->OnDataplaneEvent(ev);
    out.monitors->OnDataplaneEvent(ev);
  }
  out.monitors->AdvanceTime(stream.horizon);
  out.end_time = stream.horizon;
  return out;
}

}  // namespace

const std::vector<ScenarioEntry>& ScenarioRegistryEntries() {
  static const std::vector<ScenarioEntry> kEntries = {
      {"firewall", "stateful firewall dropping established return traffic",
       {"fw-return-not-dropped-timeout", "fw-return-not-dropped",
        "fw-return-not-dropped-until-close"}},
      {"nat", "NAT mistranslating reverse flows",
       {"nat-reverse-translation"}},
      {"learning", "learning switch flooding / mislearning",
       {"lsw-no-flood-after-learn", "lsw-correct-port",
        "lsw-linkdown-flush"}},
      {"arp", "ARP proxy answering late or never",
       {"arp-proxy-reply-deadline", "arp-known-not-forwarded",
        "arp-unknown-forwarded"}},
      {"portknock", "port-knock gate ignoring invalidation",
       {"knock-invalidation", "knock-recognize"}},
      {"lb", "load balancer picking wrong backends",
       {"lb-hashed-port", "lb-round-robin-port", "lb-sticky-port"}},
      {"ftp", "FTP data connection on unannounced port",
       {"ftp-data-port"}},
      {"dhcp", "DHCP server replying late / re-using leases",
       {"dhcp-reply-deadline", "dhcp-no-lease-reuse",
        "dhcp-no-lease-overlap"}},
      {"dhcp_arp", "DHCP-snooping ARP proxy missing preloads",
       {"dhcparp-cache-preload", "dhcparp-no-direct-reply"}},
      {"adversarial:dhcp_starvation",
       "DHCP REQUEST flood starving monitor state",
       {"dhcp-reply-deadline"}},
      {"adversarial:portknock_storm",
       "knock scan storm flushing victim sequences",
       {"knock-invalidation"}},
      {"adversarial:nat_churn", "NAT table churn parking dead instances",
       {"nat-reverse-translation"}},
      {"adversarial:fw_evasion",
       "scan flood evicting firewall windows before the violating drop",
       {"fw-return-not-dropped-timeout"}},
  };
  return kEntries;
}

bool HasScenario(const std::string& name) {
  for (const ScenarioEntry& e : ScenarioRegistryEntries())
    if (e.name == name) return true;
  return false;
}

ScenarioOutcome RunScenarioByName(const std::string& name, bool faulted,
                                  ScenarioOptions options) {
  constexpr std::string_view kAdvPrefix = "adversarial:";
  if (name.rfind(kAdvPrefix, 0) == 0)
    return RunAdversarialByName(name.substr(kAdvPrefix.size()), options);

  for (const ScenarioEntry& e : ScenarioRegistryEntries()) {
    if (e.name == name)
      return RunScenarioForProperty(e.properties.front(), faulted, options);
  }
  // Fall through: accept catalog property names directly, matching the
  // pre-registry behavior trace_replay relied on.
  return RunScenarioForProperty(name, faulted, options);
}

}  // namespace swmon
