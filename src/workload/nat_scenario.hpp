// NAT workload (drives the Sec 2.2 reverse-translation property).
//
// Internal hosts send TCP packets to an external server through the NAT;
// the external host replies to whatever (address, port) the translated
// packet carried — exactly what a real peer does — so the reply exercises
// the reverse translation path, including when the NAT mistranslates.
#pragma once

#include "apps/nat.hpp"
#include "workload/scenario_common.hpp"

namespace swmon {

struct NatScenarioConfig {
  ScenarioOptions options;
  ScenarioParams params;
  NatFault fault = NatFault::kNone;

  std::size_t flows = 20;
  std::size_t exchanges_per_flow = 2;  // outbound+reply rounds
  Duration mean_gap = Duration::Millis(10);
};

ScenarioOutcome RunNatScenario(const NatScenarioConfig& config);

}  // namespace swmon
