#include "workload/dhcp_agent.hpp"

#include "common/assert.hpp"
#include "packet/builder.hpp"
#include "packet/parser.hpp"

namespace swmon {

DhcpServerAgent::DhcpServerAgent(Network& net, Host& host,
                                 DhcpServerAgentConfig config)
    : net_(net), config_(config) {
  host.SetReceiver([this](Host& self, const Packet& pkt, SimTime at) {
    OnPacket(self, pkt, at);
  });
}

Ipv4Addr DhcpServerAgent::Allocate(MacAddr chaddr) {
  if (config_.fault == DhcpServerFault::kReuseLeasedAddress)
    return config_.pool_base;  // everyone "gets" the same address
  const auto it = by_client_.find(chaddr.bits());
  if (it != by_client_.end())
    return Ipv4Addr(config_.pool_base.bits() + it->second);
  std::uint32_t offset;
  if (!free_list_.empty()) {
    // Released addresses are re-used first — legitimate re-use, which the
    // no-reuse property must NOT flag (its RELEASE abort discharges it).
    offset = free_list_.back();
    free_list_.pop_back();
  } else {
    SWMON_ASSERT_MSG(next_offset_ < config_.pool_size, "DHCP pool exhausted");
    offset = next_offset_++;
  }
  by_client_[chaddr.bits()] = offset;
  return Ipv4Addr(config_.pool_base.bits() + offset);
}

void DhcpServerAgent::Reply(Host& self, SimTime at, const DhcpMessage& reply,
                            MacAddr dst) {
  const Duration delay = config_.fault == DhcpServerFault::kSlowReply
                             ? config_.slow_reply_delay
                             : config_.reply_delay;
  net_.SendFromHost(
      self,
      BuildDhcp(self.mac(), dst, self.ip(), reply.yiaddr,
                /*from_client=*/false, reply),
      at + delay);
}

void DhcpServerAgent::OnPacket(Host& self, const Packet& pkt, SimTime at) {
  const ParsedPacket parsed = ParsePacket(pkt, ParseDepth::kL7);
  if (!parsed.dhcp || parsed.dhcp->op != 1) return;  // requests only
  const DhcpMessage& msg = *parsed.dhcp;

  if (msg.server_id && *msg.server_id != self.ip() &&
      config_.respect_server_id) {
    return;  // addressed to another server
  }

  switch (msg.msg_type) {
    case DhcpMsgType::kDiscover: {
      DhcpMessage offer;
      offer.op = 2;
      offer.msg_type = DhcpMsgType::kOffer;
      offer.xid = msg.xid;
      offer.chaddr = msg.chaddr;
      offer.yiaddr = Allocate(msg.chaddr);
      offer.lease_secs = config_.lease_secs;
      offer.server_id = self.ip();
      Reply(self, at, offer, msg.chaddr);
      break;
    }
    case DhcpMsgType::kRequest: {
      if (config_.fault == DhcpServerFault::kNoReply) return;
      DhcpMessage ack;
      ack.op = 2;
      ack.msg_type = DhcpMsgType::kAck;
      ack.xid = msg.xid;
      ack.chaddr = msg.chaddr;
      ack.yiaddr = Allocate(msg.chaddr);
      ack.lease_secs = config_.lease_secs;
      ack.server_id = self.ip();
      Reply(self, at, ack, msg.chaddr);
      break;
    }
    case DhcpMsgType::kRelease: {
      const auto it = by_client_.find(msg.chaddr.bits());
      if (it != by_client_.end()) {
        free_list_.push_back(it->second);
        by_client_.erase(it);
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace swmon
