#include "workload/dhcp_scenario.hpp"

#include <optional>
#include <vector>

#include "apps/arp_proxy.hpp"
#include "apps/learning_switch.hpp"
#include "packet/builder.hpp"
#include "properties/catalog.hpp"

namespace swmon {
namespace {

/// Sends a scripted client handshake: DISCOVER at `at`, REQUEST one gap
/// later (blindly — the server ACKs the REQUEST regardless of OFFER
/// timing). Returns the time of the REQUEST.
SimTime ClientHandshake(Network& net, Host& client, std::uint32_t xid,
                        SimTime at, Duration gap,
                        std::optional<Ipv4Addr> server_id) {
  DhcpMessage discover;
  discover.op = 1;
  discover.msg_type = DhcpMsgType::kDiscover;
  discover.xid = xid;
  discover.chaddr = client.mac();
  net.SendFromHost(client,
                   BuildDhcp(client.mac(), MacAddr::Broadcast(),
                             Ipv4Addr::Zero(), Ipv4Addr::Broadcast(),
                             /*from_client=*/true, discover),
                   at);

  DhcpMessage request;
  request.op = 1;
  request.msg_type = DhcpMsgType::kRequest;
  request.xid = xid;
  request.chaddr = client.mac();
  request.server_id = server_id;
  const SimTime req_at = at + gap;
  net.SendFromHost(client,
                   BuildDhcp(client.mac(), MacAddr::Broadcast(),
                             Ipv4Addr::Zero(), Ipv4Addr::Broadcast(),
                             /*from_client=*/true, request),
                   req_at);
  return req_at;
}

void ClientRelease(Network& net, Host& client, std::uint32_t xid,
                   Ipv4Addr leased, Ipv4Addr server_ip, SimTime at) {
  DhcpMessage release;
  release.op = 1;
  release.msg_type = DhcpMsgType::kRelease;
  release.xid = xid;
  release.chaddr = client.mac();
  release.ciaddr = leased;
  release.server_id = server_ip;
  net.SendFromHost(client,
                   BuildDhcp(client.mac(), MacAddr::Broadcast(), leased,
                             Ipv4Addr::Broadcast(), /*from_client=*/true,
                             release),
                   at);
}

}  // namespace

ScenarioOutcome RunDhcpScenario(const DhcpScenarioConfig& config) {
  const ScenarioParams& sp = config.params;
  Rng rng(config.options.seed);

  // clients + up to two servers + the late "fresh" client.
  const std::uint32_t num_ports = config.clients + 4;
  Network net;
  SoftSwitch& sw = net.AddSwitch(1, num_ports);
  LearningSwitchApp app;
  sw.SetProgram(&app);

  const Ipv4Addr server1_ip(10, 1, 0, 1);
  const Ipv4Addr server2_ip(10, 1, 0, 2);
  Host& server1 = net.AddHost("dhcp1", TestMac(200), server1_ip);
  net.Attach(1, PortId{config.clients + 1}, server1);
  DhcpServerAgentConfig s1c;
  s1c.fault = config.fault;
  DhcpServerAgent agent1(net, server1, s1c);

  std::optional<DhcpServerAgent> agent2;
  Host* server2 = nullptr;
  if (config.second_server) {
    server2 = &net.AddHost("dhcp2", TestMac(201), server2_ip);
    net.Attach(1, PortId{config.clients + 2}, *server2);
    DhcpServerAgentConfig s2c;
    // Distinct reply latency: real servers don't answer in lock-step, and
    // near-simultaneous ACKs would unfairly penalize slow-path monitors in
    // the parity experiments.
    s2c.reply_delay = Duration::Millis(15);
    if (config.overlap_fault) {
      s2c.respect_server_id = false;  // answers REQUESTs meant for server 1
      // same pool_base as server 1 -> identical address allocations
    } else {
      s2c.pool_base = Ipv4Addr(10, 2, 0, 10);  // disjoint pool
    }
    agent2.emplace(net, *server2, s2c);
  }

  std::vector<Host*> clients;
  for (std::uint32_t c = 0; c < config.clients; ++c) {
    Host& h = net.AddHost("c" + std::to_string(c + 1), TestMac(c + 1),
                          Ipv4Addr::Zero());
    net.Attach(1, PortId{c + 1}, h);
    clients.push_back(&h);
  }

  ScenarioOutcome out;
  out.monitors = std::make_unique<MonitorSet>();
  MonitorConfig mc;
  mc.provenance = config.options.provenance;
  out.monitors->Add(DhcpReplyDeadline(sp), mc);
  out.monitors->Add(DhcpNoLeaseReuse(sp), mc);
  out.monitors->Add(DhcpNoLeaseOverlap(sp), mc);
  sw.AddObserver(out.monitors.get());
  if (config.options.keep_trace) {
    out.trace = std::make_unique<TraceRecorder>();
    sw.AddObserver(out.trace.get());
  }

  SimTime at = SimTime::Zero() + Duration::Millis(100);
  std::size_t sent = 0;
  std::vector<std::uint32_t> releasers;
  for (std::uint32_t c = 0; c < config.clients; ++c) {
    ClientHandshake(net, *clients[c], 0x1000 + c, at, config.handshake_gap,
                    server1_ip);
    sent += 2;
    at = at + config.handshake_gap * 3;
    if (rng.NextBool(config.release_fraction)) releasers.push_back(c);
  }

  // Releases, then a fresh client re-leases (legitimately) from the freed
  // addresses. Clients were allocated pool_base+index in arrival order.
  at = at + Duration::Seconds(1);
  for (const std::uint32_t c : releasers) {
    const Ipv4Addr leased(Ipv4Addr(10, 1, 0, 10).bits() + c);
    ClientRelease(net, *clients[c], 0x1000 + c, leased, server1_ip, at);
    ++sent;
    at = at + config.handshake_gap;
  }
  if (!releasers.empty()) {
    // One more client whose lease will come from the free list.
    Host& fresh = net.AddHost("c-fresh", TestMac(99), Ipv4Addr::Zero());
    net.Attach(1, PortId{config.clients + 3}, fresh);
    ClientHandshake(net, fresh, 0x2000, at, config.handshake_gap, server1_ip);
    sent += 2;
    at = at + config.handshake_gap * 3;
  }

  net.Run();
  const SimTime end = at + sp.dhcp_reply_deadline * 4;
  net.RunUntil(end);
  out.monitors->AdvanceTime(end);
  out.switch_costs = SwitchCostsFromTelemetry(sw);
  out.packets_injected = sent;
  out.end_time = end;
  return out;
}

ScenarioOutcome RunDhcpArpScenario(const DhcpArpScenarioConfig& config) {
  const ScenarioParams& sp = config.params;

  const std::uint32_t num_ports = config.clients + 2;
  Network net;
  SoftSwitch& sw = net.AddSwitch(1, num_ports);
  ArpProxyConfig pc;
  pc.dhcp_snooping = true;
  pc.fault = config.proxy_fault;
  ArpProxyApp app(pc);
  sw.SetProgram(&app);

  const Ipv4Addr server_ip(10, 1, 0, 1);
  Host& server = net.AddHost("dhcp", TestMac(200), server_ip);
  net.Attach(1, PortId{config.clients + 1}, server);
  DhcpServerAgent agent(net, server, DhcpServerAgentConfig{});

  // A prober host that ARPs for the leased addresses.
  Host& prober = net.AddHost("prober", TestMac(150), Ipv4Addr(10, 1, 0, 200));
  net.Attach(1, PortId{config.clients + 2}, prober);

  std::vector<Host*> clients;
  for (std::uint32_t c = 0; c < config.clients; ++c) {
    Host& h = net.AddHost("c" + std::to_string(c + 1), TestMac(c + 1),
                          Ipv4Addr::Zero());
    net.Attach(1, PortId{c + 1}, h);
    clients.push_back(&h);
  }

  ScenarioOutcome out;
  out.monitors = std::make_unique<MonitorSet>();
  MonitorConfig mc;
  mc.provenance = config.options.provenance;
  out.monitors->Add(DhcpArpCachePreload(sp), mc);
  out.monitors->Add(DhcpArpNoDirectReply(sp), mc);
  sw.AddObserver(out.monitors.get());
  if (config.options.keep_trace) {
    out.trace = std::make_unique<TraceRecorder>();
    sw.AddObserver(out.trace.get());
  }

  SimTime at = SimTime::Zero() + Duration::Millis(100);
  std::size_t sent = 0;
  for (std::uint32_t c = 0; c < config.clients; ++c) {
    ClientHandshake(net, *clients[c], 0x3000 + c, at, config.handshake_gap,
                    server_ip);
    sent += 2;
    at = at + config.handshake_gap * 3;
  }

  // Leases were pool_base + index. The prober ARPs for each leased address;
  // the snooping proxy must answer from its pre-loaded cache (the lease
  // holders themselves stay silent — they never ARP-reply in this script).
  at = at + Duration::Seconds(1);
  for (std::uint32_t c = 0; c < config.clients; ++c) {
    const Ipv4Addr leased(Ipv4Addr(10, 1, 0, 10).bits() + c);
    net.SendFromHost(prober,
                     BuildArpRequest(prober.mac(), prober.ip(), leased), at);
    ++sent;
    at = at + sp.arp_reply_deadline / 2;
  }
  // One probe for an address nobody leased: a correct proxy floods the
  // request; kReplyUnknown fabricates a reply (T1.13).
  net.SendFromHost(prober,
                   BuildArpRequest(prober.mac(), prober.ip(),
                                   Ipv4Addr(10, 9, 9, 9)),
                   at);
  ++sent;

  net.Run();
  const SimTime end = at + sp.arp_reply_deadline * 8;
  net.RunUntil(end);
  out.monitors->AdvanceTime(end);
  out.switch_costs = SwitchCostsFromTelemetry(sw);
  out.packets_injected = sent;
  out.end_time = end;
  return out;
}

}  // namespace swmon
