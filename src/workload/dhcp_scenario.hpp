// DHCP workloads (drive Table-1 rows T1.9/T1.10/T1.11 and, in the
// DHCP+ARP variant, T1.12/T1.13).
//
// Clients run scripted DISCOVER/REQUEST handshakes against one or two
// server agents through a learning switch (plain DHCP) or an ARP proxy
// with DHCP snooping (DHCP+ARP). Some clients RELEASE and their addresses
// are legitimately re-leased — the no-reuse property must stay quiet.
#pragma once

#include "apps/arp_proxy.hpp"
#include "workload/dhcp_agent.hpp"
#include "workload/scenario_common.hpp"

namespace swmon {

struct DhcpScenarioConfig {
  ScenarioOptions options;
  ScenarioParams params;
  DhcpServerFault fault = DhcpServerFault::kNone;

  std::uint32_t clients = 6;
  /// Fraction of clients that RELEASE; their address is re-leased to a
  /// fresh client afterwards (legitimate re-use).
  double release_fraction = 0.3;
  /// Adds a second server. With `overlap_fault` it is misconfigured: it
  /// ignores the REQUEST's server id and allocates from the SAME pool,
  /// producing lease overlap (T1.11).
  bool second_server = false;
  bool overlap_fault = false;
  Duration handshake_gap = Duration::Millis(100);
};

ScenarioOutcome RunDhcpScenario(const DhcpScenarioConfig& config);

struct DhcpArpScenarioConfig {
  ScenarioOptions options;
  ScenarioParams params;
  ArpProxyFault proxy_fault = ArpProxyFault::kNone;

  std::uint32_t clients = 4;
  Duration handshake_gap = Duration::Millis(100);
};

/// ARP proxy with DHCP snooping: leased addresses must be answerable from
/// the pre-loaded cache (T1.12), and the proxy must never fabricate replies
/// for unknown addresses (T1.13).
ScenarioOutcome RunDhcpArpScenario(const DhcpArpScenarioConfig& config);

}  // namespace swmon
