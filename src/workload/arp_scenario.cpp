#include "workload/arp_scenario.hpp"

#include <vector>

#include "packet/builder.hpp"
#include "packet/parser.hpp"
#include "properties/catalog.hpp"

namespace swmon {

ScenarioOutcome RunArpScenario(const ArpScenarioConfig& config) {
  const ScenarioParams& sp = config.params;

  Network net;
  SoftSwitch& sw = net.AddSwitch(1, config.hosts);
  ArpProxyConfig pc;
  pc.slow_reply_delay = sp.arp_reply_deadline * 5;
  pc.fault = config.fault;
  ArpProxyApp app(pc);
  sw.SetProgram(&app);

  std::vector<Host*> hosts;
  // One reply per host: afterwards resolution depends on the proxy.
  std::vector<bool> already_replied(config.hosts, false);
  for (std::uint32_t h = 0; h < config.hosts; ++h) {
    Host& host = net.AddHost("h" + std::to_string(h + 1), TestMac(h + 1),
                             InternalIp(h));
    net.Attach(1, PortId{h + 1}, host);
    hosts.push_back(&host);
    host.SetReceiver([&net, &already_replied, h](Host& self,
                                                 const Packet& pkt,
                                                 SimTime at) {
      const ParsedPacket parsed = ParsePacket(pkt, ParseDepth::kL3);
      if (!parsed.arp ||
          parsed.arp->op != static_cast<std::uint16_t>(ArpOp::kRequest) ||
          parsed.arp->target_ip != self.ip() || already_replied[h]) {
        return;
      }
      already_replied[h] = true;
      net.SendFromHost(self,
                       BuildArpReply(self.mac(), self.ip(),
                                     parsed.arp->sender_mac,
                                     parsed.arp->sender_ip),
                       at + Duration::Millis(1));
    });
  }

  ScenarioOutcome out;
  out.monitors = std::make_unique<MonitorSet>();
  MonitorConfig mc;
  mc.provenance = config.options.provenance;
  out.monitors->Add(ArpProxyReplyDeadline(sp), mc);
  out.monitors->Add(ArpKnownNotForwarded(sp), mc);
  out.monitors->Add(ArpUnknownForwarded(sp), mc);
  out.monitors->Add(DhcpArpNoDirectReply(sp), mc);
  sw.AddObserver(out.monitors.get());
  if (config.options.keep_trace) {
    out.trace = std::make_unique<TraceRecorder>();
    sw.AddObserver(out.trace.get());
  }

  std::size_t sent = 0;
  SimTime at = SimTime::Zero() + Duration::Millis(100);
  auto request = [&](std::uint32_t from, std::uint32_t target) {
    net.SendFromHost(*hosts[from],
                     BuildArpRequest(TestMac(from + 1), InternalIp(from),
                                     InternalIp(target)),
                     at);
    ++sent;
    at = at + config.mean_gap;
  };

  // Phase 1: each address is resolved once by its "left" neighbour — the
  // real host answers, the proxy learns.
  for (std::uint32_t h = 0; h < config.hosts; ++h)
    request((h + 1) % config.hosts, h);

  // Give the learning phase room before the repeat phase.
  at = at + sp.arp_reply_deadline * 2;

  // Phase 2: other hosts re-resolve known addresses; the proxy must answer
  // within the deadline and must not forward the requests.
  for (std::size_t r = 0; r < config.repeat_requests; ++r) {
    for (std::uint32_t h = 0; h < config.hosts; ++h) {
      // Offset in [1, hosts-1] keeps the requester distinct from the target.
      const std::uint32_t offset =
          1 + static_cast<std::uint32_t>(r) % (config.hosts - 1);
      request((h + offset) % config.hosts, h);
    }
  }

  net.Run();
  const SimTime end = at + sp.arp_reply_deadline * 8;
  net.RunUntil(end);
  out.monitors->AdvanceTime(end);
  out.switch_costs = SwitchCostsFromTelemetry(sw);
  out.packets_injected = sent;
  out.end_time = end;
  return out;
}

}  // namespace swmon
