// Adversarial state-exhaustion workload family.
//
// A switch monitor with bounded instance memory (EvictionConfig) can be
// attacked: an adversary floods the property's stage-0 pattern with
// distinct keys so the monitor's table fills with attacker instances and
// the eviction policy pushes a *victim* instance out before its violating
// suffix arrives — the violation is then silently missed. Each generator
// here builds exactly that shape as a raw DataplaneEvent stream,
// deterministic from a seed, so recall is computable against an unbounded
// oracle run over the same stream:
//
//   dhcp_starvation  — DHCP REQUEST flood (classic starvation): victims'
//                      REQUESTs are never answered (timeout violations at
//                      +2s); attacker REQUESTs are ACKed after the flood
//                      peak, so the oracle never counts them. Attacker
//                      deadlines sit *behind* the victims' → kTimeoutPriority
//                      evicts attackers first and keeps recall at 1.0 while
//                      kCreationOrder/kLru evict the older, idle victims.
//   fw_evasion       — crafted evasion against the refreshed firewall
//                      window: victim flows open first, a scan flood fills
//                      the table, then the firewall drops the victims'
//                      return traffic well inside their 30s windows.
//                      Same mitigation asymmetry as dhcp_starvation.
//   portknock_storm  — knock-sequence scan storm. The target property has
//                      NO windows, so every instance is deadline-free and
//                      kTimeoutPriority degenerates to creation order: no
//                      policy shields the victims (the negative result the
//                      experiment documents).
//   nat_churn        — NAT/firewall table churn: short-lived flows complete
//                      the first two translation stages and park forever at
//                      stage 3, monotonically squeezing out the full
//                      4-stage victim flows. Deadline-free like the storm.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataplane/switch.hpp"
#include "monitor/property_monitor.hpp"
#include "monitor/spec.hpp"
#include "monitor/violation.hpp"

namespace swmon {

struct AdversarialParams {
  std::uint64_t seed = 1;
  /// Distinct flood keys; each creates (at least) one monitor instance.
  std::size_t attackers = 256;
  /// Planted flows whose violating suffix arrives after the flood.
  std::size_t victims = 8;
  /// Attack intensity: flood events per simulated second.
  std::uint64_t attack_pps = 2000;
};

struct AdversarialStream {
  std::string name;      // generator name, e.g. "dhcp_starvation"
  Property property;     // the property under attack (from the catalog)
  std::vector<DataplaneEvent> events;
  /// Time by which every window/timeout in the stream has resolved; recall
  /// runs AdvanceTime(horizon) after the last event.
  SimTime horizon;
  std::size_t planted = 0;  // victim flows carrying a real violation
};

AdversarialStream DhcpStarvationStream(const AdversarialParams& ap = {});
AdversarialStream PortKnockStormStream(const AdversarialParams& ap = {});
AdversarialStream NatChurnStream(const AdversarialParams& ap = {});
AdversarialStream FirewallEvasionStream(const AdversarialParams& ap = {});

/// All generator names, in a fixed order (bench/E15 iterate this).
const std::vector<std::string>& AdversarialStreamNames();

/// Builds the named stream; asserts on unknown names (callers pick from
/// AdversarialStreamNames()).
AdversarialStream MakeAdversarialStream(const std::string& name,
                                        const AdversarialParams& ap = {});

/// Recall of a bounded-memory monitor against the unbounded oracle, both
/// run over the same stream. Violations are matched by observable content
/// (trigger stage, time, bindings) — never by instance id, which eviction
/// legitimately perturbs on re-created keys.
struct RecallReport {
  std::size_t oracle_violations = 0;
  std::size_t detected = 0;  // oracle violations the bounded run also saw
  std::size_t spurious = 0;  // bounded-run violations absent from the oracle
  std::uint64_t evictions = 0;
  double Recall() const {
    return oracle_violations == 0
               ? 1.0
               : static_cast<double>(detected) /
                     static_cast<double>(oracle_violations);
  }
};

/// Runs `stream` through an unbounded oracle and through a monitor built
/// from `bounded` (same engine kind, provenance forced to at least
/// kLimited so bindings are comparable), then matches violation multisets.
RecallReport MeasureRecall(const AdversarialStream& stream,
                           const MonitorConfig& bounded);

}  // namespace swmon
