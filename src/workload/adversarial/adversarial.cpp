#include "workload/adversarial/adversarial.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "packet/dhcp.hpp"
#include "packet/packet.hpp"
#include "properties/catalog.hpp"
#include "properties/scenario.hpp"

namespace swmon {
namespace {

constexpr std::uint64_t kTcp = static_cast<std::uint64_t>(IpProto::kTcp);
constexpr std::uint64_t kUdp = static_cast<std::uint64_t>(IpProto::kUdp);

std::uint64_t Msg(DhcpMsgType t) { return static_cast<std::uint64_t>(t); }

// Address planes kept disjoint so a flood key can never collide with (and
// thereby refresh) a victim instance.
std::uint64_t VictimIp(std::size_t i) { return 0x0a000100ull + i; }
std::uint64_t VictimPeerIp(std::size_t i) { return 0xc6336400ull + i; }
std::uint64_t AttackerIp(std::size_t j) { return 0x0a200000ull + j; }
std::uint64_t AttackerPeerIp(std::size_t j) { return 0xcb007100ull + j; }
std::uint64_t VictimMac(std::size_t i) { return 0x020000100000ull + i; }
std::uint64_t AttackerMac(std::size_t j) { return 0x020000900000ull + j; }

/// Event-stream builder: strictly increasing timestamps (ProcessEvent
/// requires monotone time) with seeded jitter so interleavings are
/// realistic but reproducible.
class StreamBuilder {
 public:
  explicit StreamBuilder(std::uint64_t seed) : rng_(seed) {}

  SimTime now() const { return t_; }
  Rng& rng() { return rng_; }

  /// Advances time by `step` plus up to 20% seeded jitter.
  void Advance(Duration step) {
    const std::int64_t ns = step.nanos();
    const std::int64_t jitter =
        ns > 4 ? static_cast<std::int64_t>(rng_.NextBelow(
                     static_cast<std::uint64_t>(ns / 4)))
               : 0;
    t_ = t_ + Duration::Nanos(ns + jitter);
  }

  /// Jumps to an absolute time (no-op if already past it).
  void AdvanceTo(SimTime target) {
    if (target.nanos() > t_.nanos()) t_ = target;
  }

  DataplaneEvent& Emit(DataplaneEventType type) {
    events_.push_back(DataplaneEvent{type, t_, FieldMap{}, 100});
    return events_.back();
  }

  std::vector<DataplaneEvent> Take() { return std::move(events_); }

 private:
  Rng rng_;
  SimTime t_ = SimTime::Zero();
  std::vector<DataplaneEvent> events_;
};

Duration AttackGap(const AdversarialParams& ap) {
  const std::uint64_t pps = ap.attack_pps == 0 ? 1 : ap.attack_pps;
  return Duration::Nanos(
      static_cast<std::int64_t>(1'000'000'000ull / pps) + 1);
}

}  // namespace

// ------------------------------------------------------- dhcp_starvation

AdversarialStream DhcpStarvationStream(const AdversarialParams& ap) {
  const ScenarioParams p;
  AdversarialStream s;
  s.name = "dhcp_starvation";
  s.property = DhcpReplyDeadline(p);
  s.planted = ap.victims;

  StreamBuilder b(ap.seed * 0x9E3779B97F4A7C15ull + 1);

  // Victims: REQUESTs the (overwhelmed) server never answers. Their
  // reply deadlines are the earliest in the stream.
  for (std::size_t i = 0; i < ap.victims; ++i) {
    b.Advance(Duration::Micros(200));
    DataplaneEvent& ev = b.Emit(DataplaneEventType::kArrival);
    ev.fields.Set(FieldId::kInPort, 1);
    ev.fields.Set(FieldId::kDhcpMsgType, Msg(DhcpMsgType::kRequest));
    ev.fields.Set(FieldId::kDhcpChaddr, VictimMac(i));
    ev.fields.Set(FieldId::kDhcpXid, 0x1000 + i);
  }

  // Starvation flood: distinct (chaddr, xid) per attacker, deadlines
  // strictly behind every victim's.
  const Duration gap = AttackGap(ap);
  std::vector<SimTime> sent(ap.attackers);
  for (std::size_t j = 0; j < ap.attackers; ++j) {
    b.Advance(gap);
    sent[j] = b.now();
    DataplaneEvent& ev = b.Emit(DataplaneEventType::kArrival);
    ev.fields.Set(FieldId::kInPort, 1);
    ev.fields.Set(FieldId::kDhcpMsgType, Msg(DhcpMsgType::kRequest));
    ev.fields.Set(FieldId::kDhcpChaddr, AttackerMac(j));
    ev.fields.Set(FieldId::kDhcpXid, 0x90000 + j);
  }

  // The server works through the attacker queue inside each 2s window, so
  // the oracle never counts an attacker timeout — only the victims are
  // real violations.
  for (std::size_t j = 0; j < ap.attackers; ++j) {
    b.AdvanceTo(sent[j] + Duration::Millis(800));
    b.Advance(Duration::Micros(50));
    DataplaneEvent& ev = b.Emit(DataplaneEventType::kEgress);
    ev.fields.Set(
        FieldId::kEgressAction,
        static_cast<std::uint64_t>(EgressActionValue::kForward));
    ev.fields.Set(FieldId::kDhcpMsgType, Msg(DhcpMsgType::kAck));
    ev.fields.Set(FieldId::kDhcpChaddr, AttackerMac(j));
    ev.fields.Set(FieldId::kDhcpXid, 0x90000 + j);
  }

  s.horizon = b.now() + p.dhcp_reply_deadline + Duration::Seconds(1);
  s.events = b.Take();
  return s;
}

// ------------------------------------------------------------ fw_evasion

AdversarialStream FirewallEvasionStream(const AdversarialParams& ap) {
  const ScenarioParams p;
  AdversarialStream s;
  s.name = "fw_evasion";
  s.property = FirewallReturnNotDroppedTimeout(p);
  s.planted = ap.victims;

  StreamBuilder b(ap.seed * 0x9E3779B97F4A7C15ull + 2);
  const std::uint64_t inside = ToU64(p.inside_port);

  // Victims establish outbound flows first; each opens a 30s window.
  for (std::size_t i = 0; i < ap.victims; ++i) {
    b.Advance(Duration::Millis(1));
    DataplaneEvent& ev = b.Emit(DataplaneEventType::kArrival);
    ev.fields.Set(FieldId::kInPort, inside);
    ev.fields.Set(FieldId::kIpSrc, VictimIp(i));
    ev.fields.Set(FieldId::kIpDst, VictimPeerIp(i));
    ev.fields.Set(FieldId::kIpProto, kTcp);
  }

  // Scan flood: every packet is a fresh (src, dst) pair, so every packet
  // is a fresh instance with a deadline behind the victims'. A sprinkle
  // of re-sent pairs keeps the attackers LRU-hot as well.
  const Duration gap = AttackGap(ap);
  for (std::size_t j = 0; j < ap.attackers; ++j) {
    b.Advance(gap);
    DataplaneEvent& ev = b.Emit(DataplaneEventType::kArrival);
    ev.fields.Set(FieldId::kInPort, inside);
    ev.fields.Set(FieldId::kIpSrc, AttackerIp(j));
    ev.fields.Set(FieldId::kIpDst, AttackerPeerIp(j));
    ev.fields.Set(FieldId::kIpProto, kTcp);
    if (j > 0 && b.rng().NextBool(0.25)) {
      const std::size_t k = b.rng().NextBelow(j);
      b.Advance(Duration::Micros(10));
      DataplaneEvent& re = b.Emit(DataplaneEventType::kArrival);
      re.fields.Set(FieldId::kInPort, inside);
      re.fields.Set(FieldId::kIpSrc, AttackerIp(k));
      re.fields.Set(FieldId::kIpDst, AttackerPeerIp(k));
      re.fields.Set(FieldId::kIpProto, kTcp);
    }
  }

  // The violating suffix: the firewall drops the victims' return traffic
  // well inside their windows. An evicted victim instance misses this.
  for (std::size_t i = 0; i < ap.victims; ++i) {
    b.Advance(Duration::Millis(2));
    DataplaneEvent& ev = b.Emit(DataplaneEventType::kEgress);
    ev.fields.Set(
        FieldId::kEgressAction,
        static_cast<std::uint64_t>(EgressActionValue::kDrop));
    ev.fields.Set(FieldId::kIpSrc, VictimPeerIp(i));
    ev.fields.Set(FieldId::kIpDst, VictimIp(i));
    ev.fields.Set(FieldId::kIpProto, kTcp);
  }

  s.horizon = b.now() + p.firewall_timeout + Duration::Seconds(1);
  s.events = b.Take();
  return s;
}

// ------------------------------------------------------- portknock_storm

AdversarialStream PortKnockStormStream(const AdversarialParams& ap) {
  const ScenarioParams p;
  AdversarialStream s;
  s.name = "portknock_storm";
  s.property = PortKnockInvalidation(p);
  s.planted = ap.victims;

  StreamBuilder b(ap.seed * 0x9E3779B97F4A7C15ull + 3);
  const std::uint64_t client = ToU64(p.lb_client_port);
  const auto knock = [&](std::uint64_t src, std::uint16_t port) {
    DataplaneEvent& ev = b.Emit(DataplaneEventType::kArrival);
    ev.fields.Set(FieldId::kInPort, client);
    ev.fields.Set(FieldId::kIpProto, kUdp);
    ev.fields.Set(FieldId::kIpSrc, src);
    ev.fields.Set(FieldId::kL4DstPort, port);
  };

  // Victims start their knock sequences...
  for (std::size_t i = 0; i < ap.victims; ++i) {
    b.Advance(Duration::Micros(500));
    knock(VictimIp(i), p.knock1);
  }

  // ...then the scan storm floods stage 0 with distinct sources. Some
  // scanners also probe a wrong port in the knock region, so they advance
  // a stage and stay recently-touched.
  const Duration gap = AttackGap(ap);
  for (std::size_t j = 0; j < ap.attackers; ++j) {
    b.Advance(gap);
    knock(AttackerIp(j), p.knock1);
    if (b.rng().NextBool(0.5)) {
      b.Advance(Duration::Micros(20));
      knock(AttackerIp(j), static_cast<std::uint16_t>(p.knock1 + 3));
    }
  }

  // Victims finish: wrong guess (invalidates), full sequence anyway, and
  // the gate opens — the violation the property exists to catch. The
  // property has no windows, so no deadline-aware policy can distinguish
  // these instances from the scanners'.
  for (std::size_t i = 0; i < ap.victims; ++i) {
    b.Advance(Duration::Millis(1));
    knock(VictimIp(i), static_cast<std::uint16_t>(p.knock1 + 3));
    b.Advance(Duration::Micros(100));
    knock(VictimIp(i), p.knock2);
    b.Advance(Duration::Micros(100));
    knock(VictimIp(i), p.knock3);
    b.Advance(Duration::Micros(100));
    DataplaneEvent& ev = b.Emit(DataplaneEventType::kEgress);
    ev.fields.Set(
        FieldId::kEgressAction,
        static_cast<std::uint64_t>(EgressActionValue::kForward));
    ev.fields.Set(FieldId::kIpProto, kTcp);
    ev.fields.Set(FieldId::kIpSrc, VictimIp(i));
    ev.fields.Set(FieldId::kL4DstPort, p.protected_port);
  }

  s.horizon = b.now() + Duration::Seconds(1);
  s.events = b.Take();
  return s;
}

// ------------------------------------------------------------- nat_churn

AdversarialStream NatChurnStream(const AdversarialParams& ap) {
  const ScenarioParams p;
  AdversarialStream s;
  s.name = "nat_churn";
  s.property = NatReverseTranslation(p);
  s.planted = ap.victims;

  StreamBuilder b(ap.seed * 0x9E3779B97F4A7C15ull + 4);
  const std::uint64_t inside = ToU64(p.inside_port);
  const std::uint64_t outside = ToU64(p.outside_port);
  std::uint64_t next_pid = 1;

  // One outbound translation: arrival inside + egress with the NAT's
  // rewritten source. Parks the created instance at the return-traffic
  // stage, holding a binding environment forever (no window).
  const auto outbound = [&](std::uint64_t src, std::uint64_t sport,
                            std::uint64_t dst, std::uint64_t dport,
                            std::uint64_t ext_port) {
    const std::uint64_t pid = next_pid++;
    DataplaneEvent& in = b.Emit(DataplaneEventType::kArrival);
    in.fields.Set(FieldId::kInPort, inside);
    in.fields.Set(FieldId::kIpSrc, src);
    in.fields.Set(FieldId::kL4SrcPort, sport);
    in.fields.Set(FieldId::kIpDst, dst);
    in.fields.Set(FieldId::kL4DstPort, dport);
    in.fields.Set(FieldId::kPacketId, pid);
    b.Advance(Duration::Micros(5));
    DataplaneEvent& out = b.Emit(DataplaneEventType::kEgress);
    out.fields.Set(
        FieldId::kEgressAction,
        static_cast<std::uint64_t>(EgressActionValue::kForward));
    out.fields.Set(FieldId::kPacketId, pid);
    out.fields.Set(FieldId::kIpSrc, 0xcb007101ull);  // NAT public address
    out.fields.Set(FieldId::kL4SrcPort, ext_port);
    out.fields.Set(FieldId::kIpDst, dst);
    out.fields.Set(FieldId::kL4DstPort, dport);
  };

  // Victims' outbound half first (their translations are the oldest state
  // in the NAT monitor's table).
  for (std::size_t i = 0; i < ap.victims; ++i) {
    b.Advance(Duration::Millis(1));
    outbound(VictimIp(i), 4000 + i, VictimPeerIp(i), 443, 30000 + i);
  }

  // Table churn: every flood flow runs its outbound half and goes silent.
  const Duration gap = AttackGap(ap);
  for (std::size_t j = 0; j < ap.attackers; ++j) {
    b.Advance(gap);
    outbound(AttackerIp(j), 5000 + (j % 1000), AttackerPeerIp(j), 80,
             40000 + j);
  }

  // Victims' return traffic comes back and the (faulty) NAT rewrites it
  // to the wrong internal destination — a violation only a still-resident
  // instance can see.
  for (std::size_t i = 0; i < ap.victims; ++i) {
    b.Advance(Duration::Millis(1));
    const std::uint64_t pid = next_pid++;
    DataplaneEvent& in = b.Emit(DataplaneEventType::kArrival);
    in.fields.Set(FieldId::kInPort, outside);
    in.fields.Set(FieldId::kIpSrc, VictimPeerIp(i));
    in.fields.Set(FieldId::kL4SrcPort, 443);
    in.fields.Set(FieldId::kIpDst, 0xcb007101ull);
    in.fields.Set(FieldId::kL4DstPort, 30000 + i);
    in.fields.Set(FieldId::kPacketId, pid);
    b.Advance(Duration::Micros(5));
    DataplaneEvent& out = b.Emit(DataplaneEventType::kEgress);
    out.fields.Set(
        FieldId::kEgressAction,
        static_cast<std::uint64_t>(EgressActionValue::kForward));
    out.fields.Set(FieldId::kPacketId, pid);
    out.fields.Set(FieldId::kIpSrc, VictimPeerIp(i));
    out.fields.Set(FieldId::kL4SrcPort, 443);
    out.fields.Set(FieldId::kIpDst, VictimIp(i));
    out.fields.Set(FieldId::kL4DstPort, 9999);  // != the original port
  }

  s.horizon = b.now() + Duration::Seconds(1);
  s.events = b.Take();
  return s;
}

// -------------------------------------------------------------- registry

const std::vector<std::string>& AdversarialStreamNames() {
  static const std::vector<std::string> kNames = {
      "dhcp_starvation", "portknock_storm", "nat_churn", "fw_evasion"};
  return kNames;
}

AdversarialStream MakeAdversarialStream(const std::string& name,
                                        const AdversarialParams& ap) {
  if (name == "dhcp_starvation") return DhcpStarvationStream(ap);
  if (name == "portknock_storm") return PortKnockStormStream(ap);
  if (name == "nat_churn") return NatChurnStream(ap);
  if (name == "fw_evasion") return FirewallEvasionStream(ap);
  SWMON_ASSERT_MSG(false, "unknown adversarial stream");
  return {};
}

// ---------------------------------------------------------------- recall

namespace {

/// Observable identity of a violation: what a downstream consumer could
/// distinguish. Instance ids are excluded on purpose (see header).
std::string ViolationSignature(const Violation& v) {
  std::string sig = v.property;
  sig += '#';
  sig += std::to_string(v.trigger_stage_index);
  sig += '@';
  sig += std::to_string(v.time.nanos());
  std::vector<std::pair<std::string, std::uint64_t>> bindings = v.bindings;
  std::sort(bindings.begin(), bindings.end());
  for (const auto& [name, value] : bindings) {
    sig += '|';
    sig += name;
    sig += '=';
    sig += std::to_string(value);
  }
  return sig;
}

std::unordered_map<std::string, std::size_t> SignatureMultiset(
    const std::vector<Violation>& vs) {
  std::unordered_map<std::string, std::size_t> m;
  for (const Violation& v : vs) ++m[ViolationSignature(v)];
  return m;
}

}  // namespace

RecallReport MeasureRecall(const AdversarialStream& stream,
                           const MonitorConfig& bounded) {
  MonitorConfig bcfg = bounded;
  if (bcfg.provenance == ProvenanceLevel::kNone)
    bcfg.provenance = ProvenanceLevel::kLimited;  // signatures need bindings

  MonitorConfig ocfg = bcfg;
  ocfg.eviction = EvictionConfig{};
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  ocfg.max_instances = 0;  // the oracle ignores the legacy cap too
#pragma GCC diagnostic pop

  const auto run = [&stream](const MonitorConfig& cfg) {
    auto monitor = CreatePropertyMonitor(stream.property, cfg);
    for (const DataplaneEvent& ev : stream.events) monitor->ProcessEvent(ev);
    monitor->AdvanceTime(stream.horizon);
    return monitor;
  };

  const auto oracle = run(ocfg);
  const auto target = run(bcfg);

  RecallReport r;
  r.oracle_violations = oracle->violations().size();

  telemetry::Snapshot snap;
  target->CollectInto(snap, "adv");
  r.evictions = snap.counter("monitor.engine.adv.instances_evicted");

  auto want = SignatureMultiset(oracle->violations());
  for (const Violation& v : target->violations()) {
    const auto it = want.find(ViolationSignature(v));
    if (it != want.end() && it->second > 0) {
      --it->second;
      ++r.detected;
    } else {
      ++r.spurious;
    }
  }
  return r;
}

}  // namespace swmon
