#include "workload/property_scenarios.hpp"

#include "workload/arp_scenario.hpp"
#include "workload/dhcp_scenario.hpp"
#include "workload/firewall_scenario.hpp"
#include "workload/ftp_scenario.hpp"
#include "workload/lb_scenario.hpp"
#include "workload/learning_scenario.hpp"
#include "workload/nat_scenario.hpp"
#include "workload/portknock_scenario.hpp"

namespace swmon {

ScenarioOutcome RunScenarioForProperty(const std::string& property_name,
                                       bool faulted,
                                       ScenarioOptions options) {
  const std::string& p = property_name;
  const std::size_t scale = options.scale == 0 ? 1 : options.scale;

  if (p == "lsw-no-flood-after-learn" || p == "lsw-correct-port" ||
      p == "lsw-linkdown-flush") {
    LearningScenarioConfig c;
    c.options = options;
    if (options.seed == 1) c.options.seed = 3;
    c.rounds = 12 * scale;
    c.inject_link_down = p == "lsw-linkdown-flush";
    if (faulted) {
      c.fault = p == "lsw-no-flood-after-learn"
                    ? LearningSwitchFault::kNeverLearn
                : p == "lsw-correct-port" ? LearningSwitchFault::kWrongPort
                                          : LearningSwitchFault::kNoFlushOnLinkDown;
    }
    return RunLearningScenario(c);
  }

  if (p.rfind("fw-return", 0) == 0) {
    FirewallScenarioConfig c;
    c.options = options;
    c.close_fraction = 0.0;
    c.stale_return_fraction = 0.0;
    c.connections *= scale;
    if (faulted) c.fault = FirewallFault::kDropEstablishedReturn;
    return RunFirewallScenario(c);
  }

  if (p == "nat-reverse-translation") {
    NatScenarioConfig c;
    c.options = options;
    c.flows *= scale;
    if (faulted) c.fault = NatFault::kWrongReversePort;
    return RunNatScenario(c);
  }

  if (p == "arp-proxy-reply-deadline" || p == "arp-known-not-forwarded" ||
      p == "arp-unknown-forwarded") {
    ArpScenarioConfig c;
    c.options = options;
    if (faulted) {
      c.fault = p == "arp-proxy-reply-deadline" ? ArpProxyFault::kSlowReply
                : p == "arp-known-not-forwarded"
                    ? ArpProxyFault::kNeverReply
                    : ArpProxyFault::kBlackholeRequests;
    }
    return RunArpScenario(c);
  }

  if (p == "knock-invalidation" || p == "knock-recognize") {
    PortKnockScenarioConfig c;
    c.options = options;
    c.clean_sessions *= scale;
    c.corrupted_sessions *= scale;
    if (faulted) {
      c.fault = p == "knock-invalidation" ? PortKnockFault::kIgnoreInvalidation
                                          : PortKnockFault::kNeverOpen;
    }
    return RunPortKnockScenario(c);
  }

  if (p == "lb-hashed-port" || p == "lb-round-robin-port" ||
      p == "lb-sticky-port") {
    LbScenarioConfig c;
    c.options = options;
    c.flows *= scale;
    c.mode = p == "lb-round-robin-port" ? LbMode::kRoundRobin : LbMode::kHash;
    if (faulted) {
      c.fault = p == "lb-hashed-port" ? LoadBalancerFault::kWrongHashPort
                : p == "lb-round-robin-port"
                    ? LoadBalancerFault::kWrongRoundRobin
                    : LoadBalancerFault::kRehashMidFlow;
    }
    return RunLbScenario(c);
  }

  if (p == "ftp-data-port") {
    FtpScenarioConfig c;
    c.options = options;
    c.sessions *= scale;
    if (faulted) {
      c.violation_fraction = 1.0;
      c.reannounce_fraction = 0.0;
    }
    return RunFtpScenario(c);
  }

  if (p == "dhcp-reply-deadline" || p == "dhcp-no-lease-reuse" ||
      p == "dhcp-no-lease-overlap") {
    DhcpScenarioConfig c;
    c.options = options;
    c.clients *= static_cast<std::uint32_t>(scale);
    c.release_fraction = 0.0;
    c.second_server = p == "dhcp-no-lease-overlap";
    if (faulted) {
      if (p == "dhcp-reply-deadline") c.fault = DhcpServerFault::kSlowReply;
      else if (p == "dhcp-no-lease-reuse")
        c.fault = DhcpServerFault::kReuseLeasedAddress;
      else c.overlap_fault = true;
    }
    return RunDhcpScenario(c);
  }

  if (p == "dhcparp-cache-preload" || p == "dhcparp-no-direct-reply") {
    DhcpArpScenarioConfig c;
    c.options = options;
    c.clients *= static_cast<std::uint32_t>(scale);
    if (faulted) {
      c.proxy_fault = p == "dhcparp-cache-preload" ? ArpProxyFault::kNoSnoop
                                                   : ArpProxyFault::kReplyUnknown;
    }
    return RunDhcpArpScenario(c);
  }

  ScenarioOutcome empty;
  empty.monitors = std::make_unique<MonitorSet>();
  return empty;
}

}  // namespace swmon
