#include "workload/ftp_scenario.hpp"

#include <map>

#include "apps/simple_forwarder.hpp"
#include "monitor/property_builder.hpp"
#include "packet/builder.hpp"
#include "properties/catalog.hpp"

namespace swmon {

Property FtpPassiveDataPort() {
  PropertyBuilder b("ftp-pasv-data-port",
                    "Data connection targets the port announced by the "
                    "server's 227 passive-mode reply");
  const VarId C = b.Var("C"), S = b.Var("S"), D = b.Var("D");
  b.AddStage("227 announces the passive endpoint")
      .Match(PatternBuilder::Arrival()
                 .Eq(FieldId::kFtpMsgKind,
                     static_cast<std::uint64_t>(FtpMsgKind::kPasvReply))
                 .Build())
      .Bind(S, FieldId::kIpSrc)
      .Bind(C, FieldId::kIpDst)
      .Bind(D, FieldId::kFtpDataPort);
  b.AddStage("client connects to a different passive port")
      .Match(PatternBuilder::Arrival()
                 .Eq(FieldId::kIpProto, 6)
                 .EqVar(FieldId::kIpSrc, C)
                 .EqVar(FieldId::kIpDst, S)
                 // Only connections into the passive region are data
                 // connections (control traffic is exempt).
                 .EqMasked(FieldId::kL4DstPort, 60000, ~std::uint64_t{15})
                 .EqMasked(FieldId::kTcpFlags, kTcpSyn, kTcpSyn | kTcpAck)
                 .NeVar(FieldId::kL4DstPort, D)
                 .Build())
      .AbortOn(PatternBuilder::Arrival()
                   .Eq(FieldId::kFtpMsgKind,
                       static_cast<std::uint64_t>(FtpMsgKind::kPasvReply))
                   .EqVar(FieldId::kIpSrc, S)
                   .EqVar(FieldId::kIpDst, C)
                   .Build());
  b.IdMode(InstanceIdMode::kSymmetric);
  return std::move(b).Build();
}

ScenarioOutcome RunFtpScenario(const FtpScenarioConfig& config) {
  const ScenarioParams& sp = config.params;
  Rng rng(config.options.seed);

  Network net;
  SoftSwitch& sw = net.AddSwitch(1, 2);
  SimpleForwarderApp app({{PortId{1}, PortId{2}}, {PortId{2}, PortId{1}}});
  sw.SetProgram(&app);

  Host& client = net.AddHost("ftp-client", TestMac(1), InternalIp(0));
  Host& server = net.AddHost("ftp-server", TestMac(2), ExternalIp(0));
  net.Attach(1, PortId{1}, client);
  net.Attach(1, PortId{2}, server);

  ScenarioOutcome out;
  out.monitors = std::make_unique<MonitorSet>();
  MonitorConfig mc;
  mc.provenance = config.options.provenance;
  out.monitors->Add(FtpDataPortMatchesControl(sp), mc);
  out.monitors->Add(FtpPassiveDataPort(), mc);
  sw.AddObserver(out.monitors.get());
  if (config.options.keep_trace) {
    out.trace = std::make_unique<TraceRecorder>();
    sw.AddObserver(out.trace.get());
  }

  std::size_t sent = 0;
  SimTime at = SimTime::Zero() + Duration::Millis(100);

  for (std::size_t s = 0; s < config.sessions; ++s) {
    // Distinct client address per session keeps instances independent.
    const Ipv4Addr c_ip = InternalIp(static_cast<std::uint32_t>(s));
    const Ipv4Addr s_ip = ExternalIp(0);
    const std::uint16_t ctl_port = static_cast<std::uint16_t>(40000 + s);
    std::uint16_t data_port = static_cast<std::uint16_t>(50000 + s * 2);

    net.SendFromHost(client,
                     BuildFtpControlLine(TestMac(1), TestMac(2), c_ip, s_ip,
                                         ctl_port, kFtpControlPort,
                                         FormatFtpPort(c_ip, data_port)),
                     at);
    ++sent;
    at = at + config.mean_gap;

    if (rng.NextBool(config.reannounce_fraction)) {
      data_port = static_cast<std::uint16_t>(data_port + 1);
      net.SendFromHost(client,
                       BuildFtpControlLine(TestMac(1), TestMac(2), c_ip, s_ip,
                                           ctl_port, kFtpControlPort,
                                           FormatFtpPort(c_ip, data_port)),
                       at);
      ++sent;
      at = at + config.mean_gap;
    }

    std::uint16_t target = data_port;
    if (rng.NextBool(config.violation_fraction))
      target = static_cast<std::uint16_t>(data_port + 100);  // wrong port

    net.SendFromHost(server,
                     BuildTcp(TestMac(2), TestMac(1), s_ip, c_ip, 20, target,
                              kTcpSyn),
                     at);
    ++sent;
    at = at + config.mean_gap;
  }

  // Passive-mode sessions: the server announces via 227, the client
  // connects into the passive region.
  for (std::size_t s_idx = 0; s_idx < config.passive_sessions; ++s_idx) {
    const Ipv4Addr c_ip = InternalIp(static_cast<std::uint32_t>(100 + s_idx));
    const Ipv4Addr s_ip = ExternalIp(0);
    const std::uint16_t ctl_port = static_cast<std::uint16_t>(45000 + s_idx);
    const std::uint16_t pasv_port =
        static_cast<std::uint16_t>(60000 + s_idx % 16);
    net.SendFromHost(server,
                     BuildFtpControlLine(TestMac(2), TestMac(1), s_ip, c_ip,
                                         kFtpControlPort, ctl_port,
                                         FormatFtpPasvReply(s_ip, pasv_port)),
                     at);
    ++sent;
    at = at + config.mean_gap;
    std::uint16_t target = pasv_port;
    if (rng.NextBool(config.violation_fraction))
      target = static_cast<std::uint16_t>(60000 + (s_idx + 1) % 16);
    net.SendFromHost(client,
                     BuildTcp(TestMac(1), TestMac(2), c_ip, s_ip,
                              static_cast<std::uint16_t>(46000 + s_idx),
                              target, kTcpSyn),
                     at);
    ++sent;
    at = at + config.mean_gap;
  }

  net.Run();
  const SimTime end = at + Duration::Seconds(1);
  net.RunUntil(end);
  out.monitors->AdvanceTime(end);
  out.switch_costs = SwitchCostsFromTelemetry(sw);
  out.packets_injected = sent;
  out.end_time = end;
  return out;
}

}  // namespace swmon
