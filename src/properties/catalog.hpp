// The property catalog: every property the paper discusses, as Property
// specs.
//
// Section-2 walkthrough properties:
//   S2.1a  firewall: established return traffic not dropped (basic)
//   S2.1b  ... within a refreshed timeout window (Feature 3)
//   S2.1c  ... unless the connection closed (Feature 4)
//   S2.2   NAT reverse translation matches the forward translation
//   S2.3   ARP proxy answers requests for known addresses within T
//   S1.a   learning switch: learned destinations are unicast, not flooded
//   S1.b   ... and unicast on the learned port
//   S2.4   link-down flushes learned destinations (multiple match)
//
// Table-1 rows (ids T1.1 .. T1.13, in the paper's order):
//   ARP proxy (2), port knocking (2), load balancing (3), FTP (1),
//   DHCP (3), DHCP + ARP proxy (2).
//
// Each entry carries the paper's published feature row (`expected`);
// AnalyzeFeatures() computes a row from the spec, and bench_table1 prints
// both. Known interpretation divergences (mostly the Obligation column —
// our encodings add abort patterns for soundness that the paper's rows
// don't count) are flagged via `known_divergence`.
#pragma once

#include <vector>

#include "monitor/features.hpp"
#include "monitor/spec.hpp"
#include "properties/scenario.hpp"

namespace swmon {

struct CatalogEntry {
  const char* id;     // "S2.1a", "T1.3", ...
  const char* group;  // Table 1 grouping ("Port Knocking", ...)
  bool in_table1;     // rows printed by bench_table1
  Property property;
  FeatureSet expected;  // the paper's row (Table 1) or our derivation (Sec 2)
  /// Columns where our sound encoding intentionally differs from the
  /// paper's published row, plus why (see DESIGN.md §5 and EXPERIMENTS.md
  /// E1). Tests assert DiffFeatureColumns(computed, expected) equals
  /// exactly this set.
  std::vector<std::string> divergent_columns;
  const char* divergence_note;  // nullptr when none
};

// --- Sec 2 / Sec 1 walkthrough properties ---
Property FirewallReturnNotDropped(const ScenarioParams& p = {});
Property FirewallReturnNotDroppedTimeout(const ScenarioParams& p = {});
Property FirewallReturnNotDroppedObligation(const ScenarioParams& p = {});
Property NatReverseTranslation(const ScenarioParams& p = {});
Property ArpProxyReplyDeadline(const ScenarioParams& p = {});
Property LearningSwitchNoFloodAfterLearn(const ScenarioParams& p = {});
Property LearningSwitchCorrectPort(const ScenarioParams& p = {});
Property LearningSwitchLinkDownFlush(const ScenarioParams& p = {});

// --- Table 1 rows ---
Property ArpKnownNotForwarded(const ScenarioParams& p = {});
Property ArpUnknownForwarded(const ScenarioParams& p = {});
Property PortKnockInvalidation(const ScenarioParams& p = {});
Property PortKnockRecognize(const ScenarioParams& p = {});
Property LbHashedPort(const ScenarioParams& p = {});
Property LbRoundRobinPort(const ScenarioParams& p = {});
Property LbStickyPort(const ScenarioParams& p = {});
Property FtpDataPortMatchesControl(const ScenarioParams& p = {});
Property DhcpReplyDeadline(const ScenarioParams& p = {});
Property DhcpNoLeaseReuse(const ScenarioParams& p = {});
Property DhcpNoLeaseOverlap(const ScenarioParams& p = {});
Property DhcpArpCachePreload(const ScenarioParams& p = {});
Property DhcpArpNoDirectReply(const ScenarioParams& p = {});

/// The full catalog (Sec 1/2 properties + all 13 Table-1 rows).
std::vector<CatalogEntry> BuildCatalog(const ScenarioParams& p = {});

}  // namespace swmon
