#include "properties/catalog.hpp"

#include "monitor/property_builder.hpp"
#include "packet/headers.hpp"

namespace swmon {
namespace {

constexpr std::uint64_t kArpRequestOp = 1;
constexpr std::uint64_t kArpReplyOp = 2;
constexpr std::uint64_t kUdp = static_cast<std::uint64_t>(IpProto::kUdp);
constexpr std::uint64_t kTcp = static_cast<std::uint64_t>(IpProto::kTcp);
constexpr std::uint64_t kFinOrRst = kTcpFin | kTcpRst;
constexpr std::uint64_t kSynNoAck_value = kTcpSyn;
constexpr std::uint64_t kSynNoAck_mask = kTcpSyn | kTcpAck;

std::uint64_t Msg(DhcpMsgType t) { return static_cast<std::uint64_t>(t); }

/// Paper Table-1 row literal.
FeatureSet Row(FieldLayer fields, bool history, bool timeouts, bool obligation,
               bool identity, bool neg, bool toa, InstanceIdMode mode) {
  FeatureSet f;
  f.fields = fields;
  f.history = history;
  f.timeouts = timeouts;
  f.obligation = obligation;
  f.identity = identity;
  f.negative_match = neg;
  f.timeout_actions = toa;
  f.multiple_match = false;
  f.id_mode = mode;
  return f;
}

}  // namespace

// ===================================================== Sec 2.1: firewall

Property FirewallReturnNotDropped(const ScenarioParams& p) {
  PropertyBuilder b("fw-return-not-dropped",
                    "After seeing traffic from internal host A to external "
                    "host B, packets from B to A are not dropped");
  const VarId A = b.Var("A"), B = b.Var("B");
  b.AddStage("A->B outbound")
      .Match(PatternBuilder::Arrival()
                 .Eq(FieldId::kInPort, ToU64(p.inside_port))
                 .Build())
      .Bind(A, FieldId::kIpSrc)
      .Bind(B, FieldId::kIpDst);
  b.AddStage("B->A dropped")
      .Match(PatternBuilder::Egress()
                 .EqVar(FieldId::kIpSrc, B)
                 .EqVar(FieldId::kIpDst, A)
                 .Dropped()
                 .Build());
  b.IdMode(InstanceIdMode::kSymmetric);
  return std::move(b).Build();
}

Property FirewallReturnNotDroppedTimeout(const ScenarioParams& p) {
  PropertyBuilder b("fw-return-not-dropped-timeout",
                    "For T seconds after seeing traffic from A to B, packets "
                    "from B to A are not dropped (timer reset by each A->B "
                    "packet)");
  const VarId A = b.Var("A"), B = b.Var("B");
  b.AddStage("A->B outbound")
      .Match(PatternBuilder::Arrival()
                 .Eq(FieldId::kInPort, ToU64(p.inside_port))
                 .Build())
      .Bind(A, FieldId::kIpSrc)
      .Bind(B, FieldId::kIpDst)
      .Window(p.firewall_timeout)
      .RefreshOnRematch();
  b.AddStage("B->A dropped within window")
      .Match(PatternBuilder::Egress()
                 .EqVar(FieldId::kIpSrc, B)
                 .EqVar(FieldId::kIpDst, A)
                 .Dropped()
                 .Build());
  b.IdMode(InstanceIdMode::kSymmetric);
  return std::move(b).Build();
}

Property FirewallReturnNotDroppedObligation(const ScenarioParams& p) {
  PropertyBuilder b("fw-return-not-dropped-until-close",
                    "For T seconds after seeing traffic from A to B, or until "
                    "the connection is closed, packets from B to A are not "
                    "dropped");
  const VarId A = b.Var("A"), B = b.Var("B");
  b.AddStage("A->B outbound (not a close)")
      .Match(PatternBuilder::Arrival()
                 .Eq(FieldId::kInPort, ToU64(p.inside_port))
                 // A close must only discharge (below), never re-establish.
                 .EqMaskedOrAbsent(FieldId::kTcpFlags, 0, kFinOrRst)
                 .Build())
      .Bind(A, FieldId::kIpSrc)
      .Bind(B, FieldId::kIpDst)
      .Window(p.firewall_timeout)
      .RefreshOnRematch();
  b.AddStage("B->A dropped while open")
      .Match(PatternBuilder::Egress()
                 .EqVar(FieldId::kIpSrc, B)
                 .EqVar(FieldId::kIpDst, A)
                 .Dropped()
                 .Build())
      // Feature 4: the obligation is discharged when either side closes.
      .AbortOn(PatternBuilder::Arrival()
                   .EqVar(FieldId::kIpSrc, A)
                   .EqVar(FieldId::kIpDst, B)
                   .NeMasked(FieldId::kTcpFlags, 0, kFinOrRst)
                   .Build())
      .AbortOn(PatternBuilder::Arrival()
                   .EqVar(FieldId::kIpSrc, B)
                   .EqVar(FieldId::kIpDst, A)
                   .NeMasked(FieldId::kTcpFlags, 0, kFinOrRst)
                   .Build());
  b.IdMode(InstanceIdMode::kSymmetric);
  return std::move(b).Build();
}

// ========================================================= Sec 2.2: NAT

Property NatReverseTranslation(const ScenarioParams& p) {
  PropertyBuilder b("nat-reverse-translation",
                    "Return packets are translated according to their "
                    "corresponding initial outgoing translation");
  const VarId A = b.Var("A"), P = b.Var("P"), B = b.Var("B"), Q = b.Var("Q");
  const VarId A2 = b.Var("A'"), P2 = b.Var("P'");
  const VarId Pid1 = b.Var("pid1"), Pid2 = b.Var("pid2");
  b.AddStage("(1) A,P -> B,Q arrives inside")
      .Match(PatternBuilder::Arrival()
                 .Eq(FieldId::kInPort, ToU64(p.inside_port))
                 .Build())
      .Bind(A, FieldId::kIpSrc)
      .Bind(P, FieldId::kL4SrcPort)
      .Bind(B, FieldId::kIpDst)
      .Bind(Q, FieldId::kL4DstPort)
      .Bind(Pid1, FieldId::kPacketId);
  b.AddStage("(2) same packet departs as A',P'")
      .Match(PatternBuilder::Egress()
                 .EqVar(FieldId::kPacketId, Pid1)  // Feature 5
                 .Forwarded()
                 .Build())
      .Bind(A2, FieldId::kIpSrc)
      .Bind(P2, FieldId::kL4SrcPort);
  b.AddStage("(3) B,Q -> A',P' arrives outside")
      .Match(PatternBuilder::Arrival()
                 .Eq(FieldId::kInPort, ToU64(p.outside_port))
                 .EqVar(FieldId::kIpSrc, B)
                 .EqVar(FieldId::kL4SrcPort, Q)
                 .EqVar(FieldId::kIpDst, A2)
                 .EqVar(FieldId::kL4DstPort, P2)
                 .Build())
      .Bind(Pid2, FieldId::kPacketId);
  b.AddStage("(4) departs with destination != A,P")
      .Match(PatternBuilder::Egress()
                 .EqVar(FieldId::kPacketId, Pid2)
                 .Forwarded()
                 // Feature 6: tuple negative match on the stored A,P.
                 .ForbidEqVar(FieldId::kIpDst, A)
                 .ForbidEqVar(FieldId::kL4DstPort, P)
                 .Build());
  b.IdMode(InstanceIdMode::kSymmetric);
  return std::move(b).Build();
}

// ==================================================== Sec 2.3: ARP proxy

Property ArpProxyReplyDeadline(const ScenarioParams& p) {
  PropertyBuilder b("arp-proxy-reply-deadline",
                    "If the switch receives a request for a known MAC "
                    "address, it will send a reply within T seconds");
  const VarId A = b.Var("A");
  b.AddStage("mapping for A learned")
      .Match(PatternBuilder::Arrival().Eq(FieldId::kArpOp, kArpReplyOp).Build())
      .Bind(A, FieldId::kArpSenderIp);
  b.AddStage("request for A")
      .Match(PatternBuilder::Arrival()
                 .Eq(FieldId::kArpOp, kArpRequestOp)
                 .EqVar(FieldId::kArpTargetIp, A)
                 .Build())
      .Window(p.arp_reply_deadline);
  // Feature 7: T passes without a reply being sent. Deliberately NOT
  // refreshed by repeated requests (Sec 2.3's subtlety).
  b.AddTimeoutStage("no reply within T")
      .AbortOn(PatternBuilder::Egress()
                   .Eq(FieldId::kArpOp, kArpReplyOp)
                   .EqVar(FieldId::kArpSenderIp, A)
                   .Build());
  b.IdMode(InstanceIdMode::kExact);
  return std::move(b).Build();
}

// ============================================ Sec 1 / 2.4: learning switch

Property LearningSwitchNoFloodAfterLearn(const ScenarioParams&) {
  PropertyBuilder b("lsw-no-flood-after-learn",
                    "Once a destination D is learned, packets to D are "
                    "unicast, not broadcast");
  const VarId D = b.Var("D"), P = b.Var("P");
  b.AddStage("D learned")
      .Match(PatternBuilder::Arrival().Build())
      .Bind(D, FieldId::kEthSrc)
      .Bind(P, FieldId::kInPort);
  b.AddStage("packet to D flooded")
      .Match(PatternBuilder::Egress()
                 .EqVar(FieldId::kEthDst, D)
                 .Flooded()
                 .Build())
      // D moving ports restarts the attempt (re-learning)...
      .AbortOn(PatternBuilder::Arrival()
                   .EqVar(FieldId::kEthSrc, D)
                   .NeVar(FieldId::kInPort, P)
                   .Build())
      // ...and a link-down legitimately flushes the learned set (Sec 2.4);
      // the flush-specific property takes over from there.
      .AbortOn(PatternBuilder::LinkStatus().Eq(FieldId::kLinkUp, 0).Build());
  b.IdMode(InstanceIdMode::kExact);
  return std::move(b).Build();
}

Property LearningSwitchCorrectPort(const ScenarioParams&) {
  PropertyBuilder b("lsw-correct-port",
                    "Once a destination D is learned, packets to D are "
                    "unicast on the appropriate port");
  const VarId D = b.Var("D"), P = b.Var("P");
  b.AddStage("D learned on P")
      .Match(PatternBuilder::Arrival().Build())
      .Bind(D, FieldId::kEthSrc)
      .Bind(P, FieldId::kInPort);
  b.AddStage("packet to D unicast on wrong port")
      .Match(PatternBuilder::Egress()
                 .EqVar(FieldId::kEthDst, D)
                 .Forwarded()
                 .NeVar(FieldId::kOutPort, P)
                 .Build())
      .AbortOn(PatternBuilder::Arrival()
                   .EqVar(FieldId::kEthSrc, D)
                   .NeVar(FieldId::kInPort, P)
                   .Build())
      .AbortOn(PatternBuilder::LinkStatus().Eq(FieldId::kLinkUp, 0).Build());
  b.IdMode(InstanceIdMode::kExact);
  return std::move(b).Build();
}

Property LearningSwitchLinkDownFlush(const ScenarioParams&) {
  PropertyBuilder b("lsw-linkdown-flush",
                    "Link-down messages delete the set of learned "
                    "destinations");
  const VarId D = b.Var("D");
  b.AddStage("D learned")
      .Match(PatternBuilder::Arrival().Build())
      .Bind(D, FieldId::kEthSrc);
  // Feature 8, multiple match: one link-down advances EVERY learned D.
  b.AddStage("a link goes down")
      .Match(PatternBuilder::LinkStatus().Eq(FieldId::kLinkUp, 0).Build());
  b.AddStage("packet to D unicast without re-learning")
      .Match(PatternBuilder::Egress()
                 .EqVar(FieldId::kEthDst, D)
                 .Forwarded()
                 .Build())
      .AbortOn(PatternBuilder::Arrival().EqVar(FieldId::kEthSrc, D).Build());
  b.IdMode(InstanceIdMode::kExact);
  return std::move(b).Build();
}

// ======================================================= Table 1: ARP rows

Property ArpKnownNotForwarded(const ScenarioParams&) {
  PropertyBuilder b("arp-known-not-forwarded",
                    "Requests for known addresses are not forwarded");
  const VarId A = b.Var("A");
  b.AddStage("mapping for A learned")
      .Match(PatternBuilder::Arrival().Eq(FieldId::kArpOp, kArpReplyOp).Build())
      .Bind(A, FieldId::kArpSenderIp);
  b.AddStage("request for A forwarded anyway")
      .Match(PatternBuilder::Egress()
                 .Eq(FieldId::kArpOp, kArpRequestOp)
                 .EqVar(FieldId::kArpTargetIp, A)
                 .NotDropped()
                 .Build());
  b.IdMode(InstanceIdMode::kExact);
  return std::move(b).Build();
}

Property ArpUnknownForwarded(const ScenarioParams& p) {
  PropertyBuilder b("arp-unknown-forwarded",
                    "Requests for unknown addresses are forwarded");
  const VarId A = b.Var("A"), Pid = b.Var("pid");
  b.AddStage("request for A arrives")
      .Match(PatternBuilder::Arrival().Eq(FieldId::kArpOp, kArpRequestOp).Build())
      .Bind(A, FieldId::kArpTargetIp)
      .Bind(Pid, FieldId::kPacketId)
      .Window(p.arp_reply_deadline);
  b.AddTimeoutStage("neither forwarded nor answered within T")
      // The request itself departed (forward or flood): Feature 5 identity.
      .AbortOn(PatternBuilder::Egress()
                   .EqVar(FieldId::kPacketId, Pid)
                   .NotDropped()
                   .Build())
      // Or the proxy answered from its cache (address was known after all).
      .AbortOn(PatternBuilder::Egress()
                   .Eq(FieldId::kArpOp, kArpReplyOp)
                   .EqVar(FieldId::kArpSenderIp, A)
                   .Build());
  b.IdMode(InstanceIdMode::kExact);
  return std::move(b).Build();
}

// ============================================== Table 1: port knocking rows

Property PortKnockInvalidation(const ScenarioParams& p) {
  PropertyBuilder b("knock-invalidation",
                    "Intervening guesses invalidate sequence");
  const VarId H = b.Var("H");
  auto knock_restart = [&] {
    return PatternBuilder::Arrival()
        .Eq(FieldId::kIpProto, kUdp)
        .EqVar(FieldId::kIpSrc, H)
        .Eq(FieldId::kL4DstPort, p.knock1)
        .Build();
  };
  b.AddStage("knock 1")
      .Match(PatternBuilder::Arrival()
                 .Eq(FieldId::kInPort, ToU64(p.lb_client_port))
                 .Eq(FieldId::kIpProto, kUdp)
                 .Eq(FieldId::kL4DstPort, p.knock1)
                 .Build())
      .Bind(H, FieldId::kIpSrc);
  b.AddStage("intervening wrong guess")
      .Match(PatternBuilder::Arrival()
                 .Eq(FieldId::kIpProto, kUdp)
                 .EqVar(FieldId::kIpSrc, H)
                 .EqMasked(FieldId::kL4DstPort, p.knock_region_base,
                           p.knock_region_mask)
                 .Ne(FieldId::kL4DstPort, p.knock2)
                 .Build());
  b.AddStage("knock 2")
      .Match(PatternBuilder::Arrival()
                 .Eq(FieldId::kIpProto, kUdp)
                 .EqVar(FieldId::kIpSrc, H)
                 .Eq(FieldId::kL4DstPort, p.knock2)
                 .Build())
      .AbortOn(knock_restart());
  b.AddStage("knock 3")
      .Match(PatternBuilder::Arrival()
                 .Eq(FieldId::kIpProto, kUdp)
                 .EqVar(FieldId::kIpSrc, H)
                 .Eq(FieldId::kL4DstPort, p.knock3)
                 .Build())
      .AbortOn(knock_restart());
  b.AddStage("gate opened despite invalidation")
      .Match(PatternBuilder::Egress()
                 .Eq(FieldId::kIpProto, kTcp)
                 .EqVar(FieldId::kIpSrc, H)
                 .Eq(FieldId::kL4DstPort, p.protected_port)
                 .Forwarded()
                 .Build())
      .AbortOn(knock_restart());
  b.IdMode(InstanceIdMode::kExact);
  return std::move(b).Build();
}

Property PortKnockRecognize(const ScenarioParams& p) {
  PropertyBuilder b("knock-recognize", "Recognize valid sequence");
  const VarId H = b.Var("H");
  auto wrong_guess = [&](std::uint16_t expected) {
    return PatternBuilder::Arrival()
        .Eq(FieldId::kIpProto, kUdp)
        .EqVar(FieldId::kIpSrc, H)
        .EqMasked(FieldId::kL4DstPort, p.knock_region_base,
                  p.knock_region_mask)
        .Ne(FieldId::kL4DstPort, expected)
        .Build();
  };
  b.AddStage("knock 1")
      .Match(PatternBuilder::Arrival()
                 .Eq(FieldId::kInPort, ToU64(p.lb_client_port))
                 .Eq(FieldId::kIpProto, kUdp)
                 .Eq(FieldId::kL4DstPort, p.knock1)
                 .Build())
      .Bind(H, FieldId::kIpSrc);
  b.AddStage("knock 2")
      .Match(PatternBuilder::Arrival()
                 .Eq(FieldId::kIpProto, kUdp)
                 .EqVar(FieldId::kIpSrc, H)
                 .Eq(FieldId::kL4DstPort, p.knock2)
                 .Build())
      .AbortOn(wrong_guess(p.knock2));
  b.AddStage("knock 3")
      .Match(PatternBuilder::Arrival()
                 .Eq(FieldId::kIpProto, kUdp)
                 .EqVar(FieldId::kIpSrc, H)
                 .Eq(FieldId::kL4DstPort, p.knock3)
                 .Build())
      .AbortOn(wrong_guess(p.knock3));
  b.AddStage("protected traffic dropped after valid sequence")
      .Match(PatternBuilder::Egress()
                 .Eq(FieldId::kIpProto, kTcp)
                 .EqVar(FieldId::kIpSrc, H)
                 .Eq(FieldId::kL4DstPort, p.protected_port)
                 .Dropped()
                 .Build());
  b.IdMode(InstanceIdMode::kExact);
  return std::move(b).Build();
}

// ============================================ Table 1: load balancing rows

namespace {

Property LbAssignmentProperty(const char* name, const char* desc,
                              const ScenarioParams& p, bool round_robin) {
  PropertyBuilder b(name, desc);
  const VarId E = b.Var("expected_port"), Pid = b.Var("pid");
  StageBuilder s0 =
      b.AddStage("new flow (SYN) arrives")
          .Match(PatternBuilder::Arrival()
                     .Eq(FieldId::kInPort, ToU64(p.lb_client_port))
                     .Eq(FieldId::kIpProto, kTcp)
                     .EqMasked(FieldId::kTcpFlags, kSynNoAck_value,
                               kSynNoAck_mask)
                     .Build())
          .Bind(Pid, FieldId::kPacketId);
  if (round_robin) {
    s0.BindRoundRobin(E, p.lb_server_count, p.lb_first_server_port);
  } else {
    s0.BindHashPort(E,
                    {FieldId::kIpSrc, FieldId::kIpDst, FieldId::kL4SrcPort,
                     FieldId::kL4DstPort},
                    p.lb_server_count, p.lb_first_server_port);
  }
  b.AddStage("flow sent to a different port")
      .Match(PatternBuilder::Egress()
                 .EqVar(FieldId::kPacketId, Pid)
                 .Forwarded()
                 .NeVar(FieldId::kOutPort, E)
                 .Build())
      // Obligation: watching the packet's fate; a drop discharges it.
      .AbortOn(PatternBuilder::Egress()
                   .EqVar(FieldId::kPacketId, Pid)
                   .Dropped()
                   .Build());
  b.IdMode(InstanceIdMode::kSymmetric);
  return std::move(b).Build();
}

}  // namespace

Property LbHashedPort(const ScenarioParams& p) {
  return LbAssignmentProperty("lb-hashed-port",
                              "New flows go to hashed port", p,
                              /*round_robin=*/false);
}

Property LbRoundRobinPort(const ScenarioParams& p) {
  return LbAssignmentProperty("lb-round-robin-port",
                              "New flows go to round-robin port", p,
                              /*round_robin=*/true);
}

Property LbStickyPort(const ScenarioParams& p) {
  PropertyBuilder b("lb-sticky-port", "No change in port until flow closed");
  const VarId SIP = b.Var("sip"), DIP = b.Var("dip");
  const VarId SP = b.Var("sport"), DP = b.Var("dport"), P = b.Var("port");
  b.AddStage("flow observed on port P")
      .Match(PatternBuilder::Egress()
                 .Eq(FieldId::kInPort, ToU64(p.lb_client_port))
                 .Eq(FieldId::kIpProto, kTcp)
                 // The closing segment must not restart the observation.
                 .EqMaskedOrAbsent(FieldId::kTcpFlags, 0, kFinOrRst)
                 .Forwarded()
                 .Build())
      .Bind(SIP, FieldId::kIpSrc)
      .Bind(DIP, FieldId::kIpDst)
      .Bind(SP, FieldId::kL4SrcPort)
      .Bind(DP, FieldId::kL4DstPort)
      .Bind(P, FieldId::kOutPort);
  b.AddStage("same flow moved to a different port")
      .Match(PatternBuilder::Egress()
                 .Eq(FieldId::kInPort, ToU64(p.lb_client_port))
                 .EqVar(FieldId::kIpSrc, SIP)
                 .EqVar(FieldId::kIpDst, DIP)
                 .EqVar(FieldId::kL4SrcPort, SP)
                 .EqVar(FieldId::kL4DstPort, DP)
                 .Forwarded()
                 .NeVar(FieldId::kOutPort, P)
                 .Build())
      // "until flow closed": FIN/RST discharges.
      .AbortOn(PatternBuilder::Arrival()
                   .EqVar(FieldId::kIpSrc, SIP)
                   .EqVar(FieldId::kIpDst, DIP)
                   .EqVar(FieldId::kL4SrcPort, SP)
                   .EqVar(FieldId::kL4DstPort, DP)
                   .NeMasked(FieldId::kTcpFlags, 0, kFinOrRst)
                   .Build());
  b.IdMode(InstanceIdMode::kSymmetric);
  return std::move(b).Build();
}

// ====================================================== Table 1: FTP row

Property FtpDataPortMatchesControl(const ScenarioParams&) {
  PropertyBuilder b("ftp-data-port",
                    "Data L4 port matches L4 port given in control stream");
  const VarId C = b.Var("C"), S = b.Var("S"), D = b.Var("D");
  b.AddStage("PORT command announces data endpoint")
      .Match(PatternBuilder::Arrival()
                 .Eq(FieldId::kFtpMsgKind,
                     static_cast<std::uint64_t>(FtpMsgKind::kPortCommand))
                 .Build())
      .Bind(C, FieldId::kIpSrc)
      .Bind(S, FieldId::kIpDst)
      .Bind(D, FieldId::kFtpDataPort);
  b.AddStage("data connection to a different port")
      .Match(PatternBuilder::Arrival()
                 .Eq(FieldId::kIpProto, kTcp)
                 .EqVar(FieldId::kIpSrc, S)
                 .EqVar(FieldId::kIpDst, C)
                 .Eq(FieldId::kL4SrcPort, 20)
                 .EqMasked(FieldId::kTcpFlags, kSynNoAck_value, kSynNoAck_mask)
                 .NeVar(FieldId::kL4DstPort, D)
                 .Build())
      // A newer PORT command supersedes the announcement.
      .AbortOn(PatternBuilder::Arrival()
                   .Eq(FieldId::kFtpMsgKind,
                       static_cast<std::uint64_t>(FtpMsgKind::kPortCommand))
                   .EqVar(FieldId::kIpSrc, C)
                   .EqVar(FieldId::kIpDst, S)
                   .Build());
  b.IdMode(InstanceIdMode::kSymmetric);
  return std::move(b).Build();
}

// ===================================================== Table 1: DHCP rows

Property DhcpReplyDeadline(const ScenarioParams& p) {
  PropertyBuilder b("dhcp-reply-deadline",
                    "Reply to lease request within T seconds");
  const VarId M = b.Var("M"), X = b.Var("xid");
  b.AddStage("REQUEST from client M")
      .Match(PatternBuilder::Arrival()
                 .Eq(FieldId::kDhcpMsgType, Msg(DhcpMsgType::kRequest))
                 .Build())
      .Bind(M, FieldId::kDhcpChaddr)
      .Bind(X, FieldId::kDhcpXid)
      .Window(p.dhcp_reply_deadline);
  b.AddTimeoutStage("no ACK/NAK within T")
      .AbortOn(PatternBuilder::Egress()
                   .Eq(FieldId::kDhcpMsgType, Msg(DhcpMsgType::kAck))
                   .EqVar(FieldId::kDhcpChaddr, M)
                   .EqVar(FieldId::kDhcpXid, X)
                   .Build())
      .AbortOn(PatternBuilder::Egress()
                   .Eq(FieldId::kDhcpMsgType, Msg(DhcpMsgType::kNak))
                   .EqVar(FieldId::kDhcpChaddr, M)
                   .EqVar(FieldId::kDhcpXid, X)
                   .Build());
  b.IdMode(InstanceIdMode::kSymmetric);
  return std::move(b).Build();
}

Property DhcpNoLeaseReuse(const ScenarioParams&) {
  PropertyBuilder b("dhcp-no-lease-reuse",
                    "Leased addresses never re-used until expiration or "
                    "release");
  const VarId A = b.Var("A"), M = b.Var("M");
  b.AddStage("A leased to M")
      .Match(PatternBuilder::Egress()
                 .Eq(FieldId::kDhcpMsgType, Msg(DhcpMsgType::kAck))
                 .Build())
      .Bind(A, FieldId::kDhcpYiaddr)
      .Bind(M, FieldId::kDhcpChaddr)
      .WindowFromField(FieldId::kDhcpLeaseSecs)  // lease-length window
      .RefreshOnRematch();                       // renewal extends it
  b.AddStage("A leased to someone else while active")
      .Match(PatternBuilder::Egress()
                 .Eq(FieldId::kDhcpMsgType, Msg(DhcpMsgType::kAck))
                 .EqVar(FieldId::kDhcpYiaddr, A)
                 .NeVar(FieldId::kDhcpChaddr, M)
                 .Build())
      .AbortOn(PatternBuilder::Arrival()
                   .Eq(FieldId::kDhcpMsgType, Msg(DhcpMsgType::kRelease))
                   .EqVar(FieldId::kDhcpCiaddr, A)
                   .EqVar(FieldId::kDhcpChaddr, M)
                   .Build());
  b.IdMode(InstanceIdMode::kSymmetric);
  return std::move(b).Build();
}

Property DhcpNoLeaseOverlap(const ScenarioParams&) {
  PropertyBuilder b("dhcp-no-lease-overlap",
                    "No lease overlap between DHCP servers");
  const VarId A = b.Var("A"), SV = b.Var("server");
  b.AddStage("server S leases A")
      .Match(PatternBuilder::Egress()
                 .Eq(FieldId::kDhcpMsgType, Msg(DhcpMsgType::kAck))
                 .Build())
      .Bind(A, FieldId::kDhcpYiaddr)
      .Bind(SV, FieldId::kDhcpServerId)
      .WindowFromField(FieldId::kDhcpLeaseSecs)
      .RefreshOnRematch();
  b.AddStage("a different server leases A too")
      .Match(PatternBuilder::Egress()
                 .Eq(FieldId::kDhcpMsgType, Msg(DhcpMsgType::kAck))
                 .EqVar(FieldId::kDhcpYiaddr, A)
                 .NeVar(FieldId::kDhcpServerId, SV)
                 .Build());
  b.IdMode(InstanceIdMode::kSymmetric);
  return std::move(b).Build();
}

// ============================================ Table 1: DHCP + ARP proxy rows

Property DhcpArpCachePreload(const ScenarioParams& p) {
  PropertyBuilder b("dhcparp-cache-preload",
                    "Pre-load ARP cache with leased addresses");
  const VarId A = b.Var("A"), M = b.Var("M");
  b.AddStage("ACK leases A to M")  // DHCP fields...
      .Match(PatternBuilder::Egress()
                 .Eq(FieldId::kDhcpMsgType, Msg(DhcpMsgType::kAck))
                 .Build())
      .Bind(A, FieldId::kDhcpYiaddr)
      .Bind(M, FieldId::kDhcpChaddr);
  b.AddStage("ARP request for A")  // ...matched against ARP fields:
      .Match(PatternBuilder::Arrival()  // wandering match (Feature 8)
                 .Eq(FieldId::kArpOp, kArpRequestOp)
                 .EqVar(FieldId::kArpTargetIp, A)
                 .Build())
      .Window(p.arp_reply_deadline);
  b.AddTimeoutStage("no correct reply within T")
      .AbortOn(PatternBuilder::Egress()
                   .Eq(FieldId::kArpOp, kArpReplyOp)
                   .EqVar(FieldId::kArpSenderIp, A)
                   .EqVar(FieldId::kArpSenderMac, M)
                   .Build());
  b.IdMode(InstanceIdMode::kWandering);
  return std::move(b).Build();
}

Property DhcpArpNoDirectReply(const ScenarioParams&) {
  PropertyBuilder b("dhcparp-no-direct-reply",
                    "No direct reply if neither pre-loaded nor prior reply "
                    "seen");
  b.AddStage("switch sends a reply for an unknown address")
      .Match(PatternBuilder::Egress().Eq(FieldId::kArpOp, kArpReplyOp).Build());
  b.SuppressionKey({FieldId::kArpSenderIp});
  // Pre-loaded from a DHCP lease (wandering: a DHCP key suppresses an ARP
  // observation):
  b.SuppressWhen(PatternBuilder::Egress()
                     .Eq(FieldId::kDhcpMsgType, Msg(DhcpMsgType::kAck))
                     .Build(),
                 {FieldId::kDhcpYiaddr});
  // ...or a prior reply traversed the switch:
  b.SuppressWhen(
      PatternBuilder::Arrival().Eq(FieldId::kArpOp, kArpReplyOp).Build(),
      {FieldId::kArpSenderIp});
  // ...or the switch itself already replied (only the first fabrication is
  // reported per address).
  b.SuppressWhen(
      PatternBuilder::Egress().Eq(FieldId::kArpOp, kArpReplyOp).Build(),
      {FieldId::kArpSenderIp});
  b.IdMode(InstanceIdMode::kWandering);
  return std::move(b).Build();
}

// ================================================================ catalog

std::vector<CatalogEntry> BuildCatalog(const ScenarioParams& p) {
  std::vector<CatalogEntry> out;
  auto sec2 = [&](const char* id, const char* group, Property prop) {
    FeatureSet computed = AnalyzeFeatures(prop);
    out.push_back(CatalogEntry{id, group, false, std::move(prop), computed,
                               {}, nullptr});
  };
  auto t1 = [&](const char* id, const char* group, Property prop,
                FeatureSet expected, std::vector<std::string> divergent,
                const char* note) {
    out.push_back(CatalogEntry{id, group, true, std::move(prop), expected,
                               std::move(divergent), note});
  };
  using L = FieldLayer;
  using M = InstanceIdMode;

  sec2("S1.a", "Learning Switch", LearningSwitchNoFloodAfterLearn(p));
  sec2("S1.b", "Learning Switch", LearningSwitchCorrectPort(p));
  sec2("S2.1a", "Stateful Firewall", FirewallReturnNotDropped(p));
  sec2("S2.1b", "Stateful Firewall", FirewallReturnNotDroppedTimeout(p));
  sec2("S2.1c", "Stateful Firewall", FirewallReturnNotDroppedObligation(p));
  sec2("S2.2", "NAT", NatReverseTranslation(p));
  sec2("S2.3", "ARP Cache Proxy", ArpProxyReplyDeadline(p));
  sec2("S2.4", "Learning Switch", LearningSwitchLinkDownFlush(p));

  //                                          fields hist  t.o.  obli  ident neg   toa
  t1("T1.1", "ARP Cache Proxy", ArpKnownNotForwarded(p),
     Row(L::kL3, true, false, false, false, false, false, M::kExact), {},
     nullptr);
  t1("T1.2", "ARP Cache Proxy", ArpUnknownForwarded(p),
     Row(L::kL3, true, false, true, true, false, true, M::kExact),
     {"obligation"},
     "obligation: our discharge patterns sit on the timeout stage, which we "
     "classify as part of the negative observation (Feature 7), not Feature 4");
  t1("T1.3", "Port Knocking", PortKnockInvalidation(p),
     Row(L::kL4, true, false, false, false, true, false, M::kExact),
     {"obligation"},
     "obligation: we add restart-knock aborts for soundness (a clean re-knock "
     "must not complete a stale attempt); the paper's row has none");
  t1("T1.4", "Port Knocking", PortKnockRecognize(p),
     Row(L::kL4, true, false, true, false, true, false, M::kExact), {},
     nullptr);
  t1("T1.5", "Load Balancing", LbHashedPort(p),
     Row(L::kL4, true, false, true, true, false, false, M::kSymmetric), {},
     nullptr);
  t1("T1.6", "Load Balancing", LbRoundRobinPort(p),
     Row(L::kL4, true, false, true, true, false, false, M::kSymmetric), {},
     nullptr);
  t1("T1.7", "Load Balancing", LbStickyPort(p),
     Row(L::kL4, true, false, false, true, true, false, M::kSymmetric),
     {"obligation", "identity"},
     "obligation: we watch for flow close (FIN/RST) to discharge; identity: "
     "our egress events carry arrival metadata, so packet identity is "
     "implicit rather than a kPacketId condition");
  t1("T1.8", "FTP", FtpDataPortMatchesControl(p),
     Row(L::kL7, true, false, false, false, true, false, M::kSymmetric),
     {"obligation"},
     "obligation: we abort on superseding PORT commands for soundness");
  t1("T1.9", "DHCP", DhcpReplyDeadline(p),
     Row(L::kL7, true, true, false, false, false, true, M::kSymmetric),
     {"timeouts"},
     "timeouts: the reply deadline is purely a negative-observation window "
     "(T.Out Acts); we reserve the Timeouts column for windows whose expiry "
     "erases state, while the paper ticks both for this row");
  t1("T1.10", "DHCP", DhcpNoLeaseReuse(p),
     Row(L::kL7, true, true, false, false, false, false, M::kSymmetric),
     {"obligation", "negative_match"},
     "negative match: chaddr != M is how we express 're-used by another "
     "client'; obligation: the RELEASE abort is the row's 'or release'");
  t1("T1.11", "DHCP", DhcpNoLeaseOverlap(p),
     Row(L::kL7, true, false, false, false, true, false, M::kSymmetric),
     {"timeouts"},
     "timeouts: we bound the overlap check by the lease window so expired "
     "leases cannot alarm; the paper's row leaves Timeouts blank");
  t1("T1.12", "DHCP + ARP Proxy", DhcpArpCachePreload(p),
     Row(L::kL7, true, false, false, false, true, true, M::kWandering),
     {"negative_match"},
     "negative match: a reply with the wrong MAC fails to discharge the "
     "timeout (absence-of-correct-reply) rather than matching negatively");
  t1("T1.13", "DHCP + ARP Proxy", DhcpArpNoDirectReply(p),
     Row(L::kL7, true, false, true, false, false, false, M::kWandering), {},
     nullptr);
  return out;
}

}  // namespace swmon
