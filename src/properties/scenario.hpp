// Shared scenario conventions.
//
// Properties, apps, and workload generators must agree on port roles and
// protocol constants (which port is "internal", what the knock sequence
// is, ...). This header is the single source of those conventions.
#pragma once

#include <cstdint>

#include "common/sim_time.hpp"
#include "packet/addr.hpp"
#include "packet/packet.hpp"

namespace swmon {

struct ScenarioParams {
  // --- firewall / NAT topology: port 1 inside, port 2 outside ---
  PortId inside_port = PortId{1};
  PortId outside_port = PortId{2};
  Duration firewall_timeout = Duration::Seconds(30);
  Ipv4Addr nat_public_ip = Ipv4Addr(203, 0, 113, 1);

  // --- ARP proxy ---
  Duration arp_reply_deadline = Duration::Seconds(1);

  // --- port knocking (region [7000,7004), knocks 7000,7001,7002) ---
  std::uint16_t knock1 = 7000;
  std::uint16_t knock2 = 7001;
  std::uint16_t knock3 = 7002;
  std::uint16_t knock_region_base = 7000;
  std::uint64_t knock_region_mask = ~std::uint64_t{3};
  std::uint16_t protected_port = 22;

  // --- load balancer: port 1 clients, ports [2, 2+server_count) servers ---
  PortId lb_client_port = PortId{1};
  std::uint32_t lb_first_server_port = 2;
  std::uint32_t lb_server_count = 4;

  // --- DHCP ---
  Duration dhcp_reply_deadline = Duration::Seconds(2);
};

}  // namespace swmon
