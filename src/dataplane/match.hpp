// Match predicates over FieldMaps, as used by flow tables.
//
// A FieldMatch tests one field against a masked value, optionally negated
// (Feature 6: negative match — the NAT property's "destination NOT equal to
// the recorded A,P"). A MatchSet is a conjunction; an empty set matches
// everything (a table-miss entry).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "packet/field.hpp"

namespace swmon {

struct FieldMatch {
  FieldId field;
  std::uint64_t value = 0;
  std::uint64_t mask = ~std::uint64_t{0};
  bool negate = false;
  /// Validity-bit match: requires the field to be ABSENT from the event
  /// (parsers expose header-valid bits; P4's header.isValid()). value/mask/
  /// negate are ignored when set.
  bool require_absent = false;

  /// A match on an absent field fails (and a negated match on an absent
  /// field also fails: negative match still requires the field to exist —
  /// "departed with destination != A" presumes a destination).
  bool Matches(const FieldMap& fields) const {
    const auto v = fields.Get(field);
    if (require_absent) return !v.has_value();
    if (!v) return false;
    const bool eq = (*v & mask) == (value & mask);
    return negate ? !eq : eq;
  }

  static FieldMatch Exact(FieldId f, std::uint64_t v) {
    return FieldMatch{f, v, ~std::uint64_t{0}, false, false};
  }
  static FieldMatch NotEqual(FieldId f, std::uint64_t v) {
    return FieldMatch{f, v, ~std::uint64_t{0}, true, false};
  }
  static FieldMatch Masked(FieldId f, std::uint64_t v, std::uint64_t m) {
    return FieldMatch{f, v, m, false, false};
  }
  static FieldMatch Absent(FieldId f) {
    return FieldMatch{f, 0, 0, false, true};
  }

  std::string ToString() const;
};

class MatchSet {
 public:
  MatchSet() = default;
  explicit MatchSet(std::vector<FieldMatch> terms) : terms_(std::move(terms)) {}

  void Add(FieldMatch m) { terms_.push_back(m); }

  bool Matches(const FieldMap& fields) const {
    for (const auto& t : terms_)
      if (!t.Matches(fields)) return false;
    return true;
  }

  bool empty() const { return terms_.empty(); }
  std::size_t size() const { return terms_.size(); }
  const std::vector<FieldMatch>& terms() const { return terms_; }

  std::string ToString() const;

 private:
  std::vector<FieldMatch> terms_;
};

}  // namespace swmon
