#include "dataplane/switch.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace swmon {

const char* DataplaneEventTypeName(DataplaneEventType t) {
  switch (t) {
    case DataplaneEventType::kArrival: return "arrival";
    case DataplaneEventType::kEgress: return "egress";
    case DataplaneEventType::kLinkStatus: return "link_status";
  }
  return "?";
}

SoftSwitch::SoftSwitch(std::uint32_t switch_id, std::uint32_t num_ports,
                       EventQueue& queue, CostParams params)
    : switch_id_(switch_id),
      num_ports_(num_ports),
      queue_(queue),
      params_(params),
      // Index 0 unused: PortId 0 is the invalid port.
      link_up_(num_ports + 1, true) {}

SoftSwitch::~SoftSwitch() { AttachTelemetry(nullptr); }

void SoftSwitch::AttachTelemetry(telemetry::MetricsRegistry* registry) {
  if (registry_ != nullptr) registry_->RemoveCollector(collector_token_);
  registry_ = registry;
  packet_cost_hist_ = nullptr;
  collector_token_ = 0;
  if (registry_ == nullptr) return;
  packet_cost_hist_ = &registry_->histogram(
      "dataplane.switch." + std::to_string(switch_id_) + ".packet_cost_ns");
  collector_token_ = registry_->AddCollector(
      [this](telemetry::Snapshot& snap) { CollectInto(snap); });
}

void SoftSwitch::CollectInto(telemetry::Snapshot& snap) const {
  std::string prefix = "dataplane.switch." + std::to_string(switch_id_) + ".";
  snap.SetCounter(prefix + "packets", counters_.packets);
  snap.SetCounter(prefix + "table_lookups", counters_.table_lookups);
  snap.SetCounter(prefix + "state_table_ops", counters_.state_table_ops);
  snap.SetCounter(prefix + "register_ops", counters_.register_ops);
  snap.SetCounter(prefix + "flow_mods", counters_.flow_mods);
  snap.SetCounter(prefix + "controller_msgs", counters_.controller_msgs);
  snap.SetCounter(
      prefix + "processing_ns",
      static_cast<std::uint64_t>(counters_.processing_time.nanos()));
}

telemetry::Snapshot SoftSwitch::TelemetrySnapshot() const {
  telemetry::Snapshot snap;
  CollectInto(snap);
  return snap;
}

void SoftSwitch::RemoveObserver(DataplaneObserver* obs) {
  std::erase(observers_, obs);
}

FieldMap SoftSwitch::BaseMeta() const {
  FieldMap meta;
  meta.Set(FieldId::kSwitchId, switch_id_);
  return meta;
}

void SoftSwitch::Observe(const DataplaneEvent& event) {
  for (auto* obs : observers_) obs->OnDataplaneEvent(event);
}

void SoftSwitch::FlushObservers() {
  for (auto* obs : observers_) obs->FlushEvents();
}

void SoftSwitch::EmitEgress(const ParsedPacket& view, PacketId id,
                            const ForwardDecision& decision,
                            std::uint32_t packet_bytes) {
  DataplaneEvent ev;
  ev.type = DataplaneEventType::kEgress;
  ev.time = queue_.now();
  ev.fields = view.fields;
  ev.packet_bytes = packet_bytes;
  ev.fields.Set(FieldId::kSwitchId, switch_id_);
  ev.fields.Set(FieldId::kPacketId, ToU64(id));
  ev.fields.Set(FieldId::kEgressAction,
                static_cast<std::uint64_t>(decision.action));
  if (decision.action == EgressActionValue::kForward)
    ev.fields.Set(FieldId::kOutPort, ToU64(decision.out_port));
  Observe(ev);
}

void SoftSwitch::ReceivePacket(PortId in_port, Packet pkt) {
  SWMON_ASSERT(ToU64(in_port) >= 1 && ToU64(in_port) <= num_ports_);
  if (!LinkUp(in_port)) return;  // packets don't arrive on downed links

  pkt.id = PacketId{next_packet_id_++};
  ++counters_.packets;
  const Duration cost_before = counters_.processing_time;

  ParsedPacket parsed = ParsePacket(pkt, parse_depth_);
  counters_.processing_time += parse_depth_ >= ParseDepth::kL7
                                   ? params_.parse_l7
                                   : params_.parse_l4;
  if (!parsed.valid) {
    SWMON_LOG_DEBUG("dataplane", "sw%u: dropping unparseable %zu-byte frame",
                    switch_id_, pkt.size());
    if (packet_cost_hist_ != nullptr) {
      packet_cost_hist_->Record(static_cast<std::uint64_t>(
          (counters_.processing_time - cost_before).nanos()));
    }
    return;
  }
  parsed.fields.Set(FieldId::kSwitchId, switch_id_);
  parsed.fields.Set(FieldId::kInPort, ToU64(in_port));
  parsed.fields.Set(FieldId::kPacketId, ToU64(pkt.id));

  DataplaneEvent arrival;
  arrival.type = DataplaneEventType::kArrival;
  arrival.time = queue_.now();
  arrival.fields = parsed.fields;
  arrival.packet_bytes = static_cast<std::uint32_t>(pkt.size());
  Observe(arrival);

  ForwardDecision decision = ForwardDecision::Drop();
  if (program_ != nullptr) decision = program_->OnPacket(*this, parsed, in_port);

  // Use the rewritten view for egress observation and transmission, but
  // preserve arrival identity (Feature 5) and metadata.
  const ParsedPacket* view = &parsed;
  Packet out = pkt;
  if (decision.rewritten) {
    decision.rewritten->fields.Set(FieldId::kSwitchId, switch_id_);
    decision.rewritten->fields.Set(FieldId::kInPort, ToU64(in_port));
    decision.rewritten->fields.Set(FieldId::kPacketId, ToU64(pkt.id));
    view = &*decision.rewritten;
    out.data = EncodeParsed(*view);
  }

  EmitEgress(*view, pkt.id, decision, static_cast<std::uint32_t>(out.size()));

  switch (decision.action) {
    case EgressActionValue::kForward:
      SWMON_ASSERT(ToU64(decision.out_port) >= 1 &&
                   ToU64(decision.out_port) <= num_ports_);
      if (transmit_ && LinkUp(decision.out_port))
        transmit_(decision.out_port, out);
      break;
    case EgressActionValue::kFlood:
      if (transmit_) {
        for (std::uint32_t p = 1; p <= num_ports_; ++p) {
          const PortId port{p};
          if (port != in_port && LinkUp(port)) transmit_(port, out);
        }
      }
      break;
    case EgressActionValue::kDrop:
      break;
  }
  if (packet_cost_hist_ != nullptr) {
    packet_cost_hist_->Record(static_cast<std::uint64_t>(
        (counters_.processing_time - cost_before).nanos()));
  }
}

void SoftSwitch::EmitPacket(PortId out_port, Packet pkt) {
  SWMON_ASSERT(ToU64(out_port) >= 1 && ToU64(out_port) <= num_ports_);
  pkt.id = PacketId{next_packet_id_++};

  ParsedPacket parsed = ParsePacket(pkt, parse_depth_);
  if (!parsed.valid) return;
  parsed.fields.Set(FieldId::kSwitchId, switch_id_);
  parsed.fields.Set(FieldId::kPacketId, ToU64(pkt.id));

  EmitEgress(parsed, pkt.id, ForwardDecision::Forward(out_port),
             static_cast<std::uint32_t>(pkt.size()));
  if (transmit_ && LinkUp(out_port)) transmit_(out_port, pkt);
}

void SoftSwitch::SetLinkStatus(PortId port, bool up) {
  SWMON_ASSERT(ToU64(port) >= 1 && ToU64(port) <= num_ports_);
  link_up_[ToU64(port)] = up;

  if (program_ != nullptr) program_->OnLinkStatus(*this, port, up);

  DataplaneEvent ev;
  ev.type = DataplaneEventType::kLinkStatus;
  ev.time = queue_.now();
  ev.fields = BaseMeta();
  ev.fields.Set(FieldId::kLinkId, ToU64(port));
  ev.fields.Set(FieldId::kLinkUp, up ? 1 : 0);
  Observe(ev);
}

bool SoftSwitch::LinkUp(PortId port) const {
  return link_up_[ToU64(port)];
}

}  // namespace swmon
