#include "dataplane/flow_table.hpp"

#include <algorithm>

namespace swmon {

bool FlowTable::Expired(const FlowEntry& e, SimTime now) {
  if (e.hard_timeout > Duration::Zero() &&
      now - e.installed_at >= e.hard_timeout)
    return true;
  if (e.idle_timeout > Duration::Zero() && now - e.last_used >= e.idle_timeout)
    return true;
  return false;
}

std::uint64_t FlowTable::Add(FlowEntry entry, SimTime now) {
  entry.installed_at = now;
  entry.last_used = now;
  const std::uint64_t handle = next_handle_++;
  const Slot slot{handle, std::move(entry)};
  auto it = std::lower_bound(
      slots_.begin(), slots_.end(), slot, [](const Slot& a, const Slot& b) {
        if (a.entry.priority != b.entry.priority)
          return a.entry.priority > b.entry.priority;
        return a.handle < b.handle;
      });
  slots_.insert(it, slot);
  return handle;
}

bool FlowTable::Remove(std::uint64_t handle) {
  auto it = std::find_if(slots_.begin(), slots_.end(),
                         [&](const Slot& s) { return s.handle == handle; });
  if (it == slots_.end()) return false;
  slots_.erase(it);
  return true;
}

std::size_t FlowTable::RemoveByCookie(std::uint64_t cookie) {
  const auto before = slots_.size();
  std::erase_if(slots_, [&](const Slot& s) { return s.entry.cookie == cookie; });
  return before - slots_.size();
}

const FlowEntry* FlowTable::Lookup(const FieldMap& fields, SimTime now) {
  ++lookups_;
  for (auto& slot : slots_) {
    if (Expired(slot.entry, now)) continue;
    if (slot.entry.match.Matches(fields)) {
      slot.entry.last_used = now;
      ++slot.entry.hit_count;
      return &slot.entry;
    }
  }
  return nullptr;
}

std::size_t FlowTable::SweepExpired(
    SimTime now, const std::function<void(const FlowEntry&)>& on_expired) {
  // Collect first: the callback may mutate the table (Varanus timeout
  // actions install successor entries).
  std::vector<std::uint64_t> dead;
  std::vector<FlowEntry> expired;
  for (const auto& slot : slots_) {
    if (Expired(slot.entry, now)) {
      dead.push_back(slot.handle);
      expired.push_back(slot.entry);
    }
  }
  for (auto h : dead) Remove(h);
  if (on_expired) {
    for (const auto& e : expired) on_expired(e);
  }
  return expired.size();
}

std::vector<const FlowEntry*> FlowTable::Entries() const {
  std::vector<const FlowEntry*> out;
  out.reserve(slots_.size());
  for (const auto& s : slots_) out.push_back(&s.entry);
  return out;
}

}  // namespace swmon
