// The slow path: rate-limited, delayed state mutations.
//
// OpenFlow flow-mods and OVS learn-action installs do not complete inline
// with the packet that triggered them — they traverse the switch's slow
// path, which has both a fixed latency and a bounded throughput. This is
// the crux of Sec 3.3's claim that rule-based monitor state "cannot be
// modified at line rate": while a mutation is queued, packets keep flowing
// against stale state, which is what the split-mode staleness bench (E5)
// measures.
//
// The queue models a single-server FIFO: mutation i completes at
//   max(submit_i, completion_{i-1} + 1/rate) + latency.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "common/sim_time.hpp"
#include "dataplane/cost_model.hpp"

namespace swmon {

class FlowModQueue {
 public:
  using Mutation = std::function<void(SimTime applied_at)>;

  explicit FlowModQueue(const CostParams& params) : params_(params) {}

  /// Submits a mutation at `now`; it will apply at the modeled completion
  /// time. Returns that completion time.
  SimTime Submit(SimTime now, Mutation m);

  /// Applies every mutation whose completion time is <= now.
  /// Returns the number applied.
  std::size_t Advance(SimTime now);

  std::size_t pending() const { return queue_.size(); }
  std::uint64_t submitted() const { return submitted_; }

  /// Completion time of the most recently submitted mutation (state is
  /// fully caught up once Advance passes this instant).
  SimTime LastCompletion() const { return last_completion_; }

 private:
  struct Pending {
    SimTime completes;
    Mutation mutation;
  };

  const CostParams params_;
  std::deque<Pending> queue_;
  SimTime prev_service_end_ = SimTime::Zero();
  SimTime last_completion_ = SimTime::Zero();
  std::uint64_t submitted_ = 0;
};

}  // namespace swmon
