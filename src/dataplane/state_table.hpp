// OpenState-style per-flow state tables (Bianchi et al., Table 2 column 2).
//
// An OpenState switch pairs each flow table with a state table: packets are
// mapped to a state via a *lookup scope* (an ordered field list), and state
// writes go through a possibly different *update scope*. Using reversed
// scopes gives the "symmetric match" of Table 2 — e.g. look up TCP flows by
// (ip_src, ip_dst) but update by (ip_dst, ip_src) so that a reply finds the
// state its initiator wrote. Transitions are fast-path: they complete inline
// with packet processing (cost: CostParams::state_table_op).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/sim_time.hpp"
#include "dataplane/flow_key.hpp"

namespace swmon {

inline constexpr std::uint64_t kDefaultState = 0;

class StateTable {
 public:
  StateTable(std::vector<FieldId> lookup_scope,
             std::vector<FieldId> update_scope)
      : lookup_scope_(std::move(lookup_scope)),
        update_scope_(std::move(update_scope)) {}

  /// State for the event's flow (kDefaultState when never written or when
  /// the scope fields are absent). Expired entries read as default.
  std::uint64_t Lookup(const FieldMap& fields, SimTime now);

  /// Writes state through the update scope. `ttl` of zero means no expiry.
  /// Returns false when the scope cannot be projected from the event.
  bool Update(const FieldMap& fields, std::uint64_t state, SimTime now,
              Duration ttl = Duration::Zero());

  /// Deletes the flow's state via the update scope.
  bool Erase(const FieldMap& fields);

  std::size_t size() const { return states_.size(); }
  std::uint64_t ops() const { return ops_; }

  const std::vector<FieldId>& lookup_scope() const { return lookup_scope_; }
  const std::vector<FieldId>& update_scope() const { return update_scope_; }

 private:
  struct Cell {
    std::uint64_t state;
    SimTime expires;  // SimTime::Infinity() = never
  };

  std::vector<FieldId> lookup_scope_;
  std::vector<FieldId> update_scope_;
  std::unordered_map<FlowKey, Cell, FlowKeyHash> states_;
  std::uint64_t ops_ = 0;
};

}  // namespace swmon
