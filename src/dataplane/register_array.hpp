// P4-style register arrays (Table 2: "flow registers", fast-path state).
//
// A fixed-size array of 64-bit cells indexed by a hash of key fields.
// Reads and writes are fast-path (CostParams::register_op) — this is the
// mechanism Sec 3.3 says a scalable monitor implementation would need
// instead of OpenFlow rule updates. Hash collisions are real and observable
// (fixed array, no chaining), exactly as on a register-based target; the
// state-update bench reports the collision rate alongside throughput.
#pragma once

#include <cstdint>
#include <vector>

#include "dataplane/flow_key.hpp"

namespace swmon {

class RegisterArray {
 public:
  explicit RegisterArray(std::size_t size) : cells_(size) {}

  std::size_t size() const { return cells_.size(); }
  std::uint64_t ops() const { return ops_; }

  std::size_t IndexOf(const FlowKey& key) const {
    return static_cast<std::size_t>(key.Hash() % cells_.size());
  }

  std::uint64_t Read(std::size_t index) {
    ++ops_;
    return cells_[index % cells_.size()];
  }

  void Write(std::size_t index, std::uint64_t value) {
    ++ops_;
    cells_[index % cells_.size()] = value;
  }

  std::uint64_t ReadKey(const FlowKey& key) { return Read(IndexOf(key)); }
  void WriteKey(const FlowKey& key, std::uint64_t value) {
    Write(IndexOf(key), value);
  }

 private:
  std::vector<std::uint64_t> cells_;
  std::uint64_t ops_ = 0;
};

}  // namespace swmon
