// Token-bucket meter — OpenFlow's built-in quantitative primitive ("basic
// quantitative state, such as counters and meters", paper Sec 3.1).
//
// A meter admits traffic up to `rate` (units per second, packets or bytes
// as the caller decides) with bursts up to `burst`. Deterministic: tokens
// accrue with simulated time.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/sim_time.hpp"
#include "telemetry/snapshot.hpp"

namespace swmon {

class Meter {
 public:
  /// `rate` tokens per second, bucket capacity `burst` tokens.
  Meter(std::uint64_t rate, std::uint64_t burst)
      : rate_(rate), burst_(burst), tokens_(burst) {}

  /// Consumes `cost` tokens at time `now`. Returns true when admitted,
  /// false when the packet exceeds the band (would be dropped/marked).
  bool Admit(SimTime now, std::uint64_t cost = 1) {
    Refill(now);
    if (tokens_ < cost) {
      ++exceeded_;
      return false;
    }
    tokens_ -= cost;
    ++admitted_;
    return true;
  }

  /// Publishes `dataplane.meter.<name>.{admitted,exceeded}` counters and
  /// the `tokens` gauge into `snap`.
  void CollectInto(telemetry::Snapshot& snap, std::string_view name) const {
    std::string prefix = "dataplane.meter.";
    prefix.append(name);
    prefix += '.';
    snap.SetCounter(prefix + "admitted", admitted_);
    snap.SetCounter(prefix + "exceeded", exceeded_);
    snap.SetGauge(prefix + "tokens", static_cast<std::int64_t>(tokens_));
  }

  /// DEPRECATED shims (one PR): read via CollectInto / telemetry::Snapshot.
  [[deprecated("query via telemetry::Snapshot")]]
  std::uint64_t admitted() const {
    return admitted_;
  }
  [[deprecated("query via telemetry::Snapshot")]]
  std::uint64_t exceeded() const {
    return exceeded_;
  }
  [[deprecated("query via telemetry::Snapshot")]]
  std::uint64_t tokens() const {
    return tokens_;
  }

 private:
  void Refill(SimTime now) {
    if (now <= last_) return;
    const Duration elapsed = now - last_;
    last_ = now;
    // tokens += rate * elapsed, accumulated at nanosecond resolution.
    accum_ns_ += static_cast<std::uint64_t>(elapsed.nanos()) * rate_;
    const std::uint64_t whole = accum_ns_ / 1000000000ULL;
    accum_ns_ %= 1000000000ULL;
    tokens_ = tokens_ + whole > burst_ ? burst_ : tokens_ + whole;
  }

  std::uint64_t rate_;
  std::uint64_t burst_;
  std::uint64_t tokens_;
  std::uint64_t accum_ns_ = 0;
  SimTime last_ = SimTime::Zero();
  std::uint64_t admitted_ = 0;
  std::uint64_t exceeded_ = 0;
};

}  // namespace swmon
