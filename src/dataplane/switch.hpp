// The soft switch: programs, observers, and the event stream monitors see.
//
// A SoftSwitch hosts one forwarding program (the device under test — a
// learning switch, stateful firewall, NAT, ...) and any number of
// DataplaneObservers (monitors). For every packet it emits:
//
//   * an *arrival* event carrying the parsed fields plus metadata
//     (in_port, packet_id, switch_id), then
//   * one *egress* event carrying the (possibly rewritten) fields plus the
//     egress action — unicast forward with its out_port, flood, or DROP.
//
// Reporting drops as egress events is deliberate: the paper (Feature 5 /
// Sec 3.2) observes that real switches almost universally hide drops from
// the egress pipeline; this switch is the "ideal monitor-friendly switch",
// and the OpenFlow/OpenState/... backends reintroduce their targets' gaps.
// Link status changes are delivered as out-of-band events (Feature 8,
// multiple match).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "dataplane/cost_model.hpp"
#include "event/event_queue.hpp"
#include "packet/builder.hpp"
#include "packet/parser.hpp"
#include "telemetry/metrics.hpp"

namespace swmon {

enum class DataplaneEventType : std::uint8_t {
  kArrival = 0,
  kEgress = 1,
  kLinkStatus = 2,
};

inline constexpr std::size_t kNumDataplaneEventTypes = 3;

const char* DataplaneEventTypeName(DataplaneEventType t);

/// Bit i set = DataplaneEventType(i) is relevant. See InterestSignature()
/// in monitor/features.hpp; MonitorSet uses it to pre-filter dispatch.
using EventTypeMask = std::uint8_t;

inline constexpr EventTypeMask EventTypeBit(DataplaneEventType t) {
  return static_cast<EventTypeMask>(1u << static_cast<unsigned>(t));
}
inline constexpr EventTypeMask kAllEventTypes =
    static_cast<EventTypeMask>((1u << kNumDataplaneEventTypes) - 1);

/// One observable event. `fields` always contains kSwitchId; arrivals add
/// kInPort and kPacketId; egress events add kEgressAction (and kOutPort for
/// unicast forwards) while keeping the arrival's kPacketId (Feature 5);
/// link-status events carry kLinkId and kLinkUp.
struct DataplaneEvent {
  DataplaneEventType type;
  SimTime time;
  FieldMap fields;
  /// Wire size of the packet this event concerns (0 for link events).
  /// An off-switch monitor must receive this many bytes to see the event.
  std::uint32_t packet_bytes = 0;
};

class DataplaneObserver {
 public:
  virtual ~DataplaneObserver() = default;
  virtual void OnDataplaneEvent(const DataplaneEvent& event) = 0;
  /// Batching observers (e.g. ParallelMonitorSet) buffer events between
  /// OnDataplaneEvent calls; the switch raises this at quiet points —
  /// SoftSwitch::FlushObservers(), called when an injector goes idle or
  /// before querying monitor state — so buffered events are fully
  /// delivered. Per-event observers ignore it.
  virtual void FlushEvents() {}
};

class SoftSwitch;

/// What the program decided to do with a packet.
struct ForwardDecision {
  EgressActionValue action = EgressActionValue::kDrop;
  PortId out_port = kInvalidPortId;  // required iff action == kForward
  /// Set when the program rewrote the packet (e.g. NAT): egress events and
  /// transmission use this view instead of the arrival's.
  std::optional<ParsedPacket> rewritten;

  static ForwardDecision Forward(PortId port) {
    return ForwardDecision{EgressActionValue::kForward, port, std::nullopt};
  }
  static ForwardDecision Flood() {
    return ForwardDecision{EgressActionValue::kFlood, kInvalidPortId,
                           std::nullopt};
  }
  static ForwardDecision Drop() {
    return ForwardDecision{EgressActionValue::kDrop, kInvalidPortId,
                           std::nullopt};
  }
};

/// The forwarding logic under test.
class SwitchProgram {
 public:
  virtual ~SwitchProgram() = default;
  virtual ForwardDecision OnPacket(SoftSwitch& sw, const ParsedPacket& pkt,
                                   PortId in_port) = 0;
  virtual void OnLinkStatus(SoftSwitch& sw, PortId port, bool up) {
    (void)sw, (void)port, (void)up;
  }
  virtual const char* Name() const = 0;
};

class SoftSwitch {
 public:
  /// `transmit` is invoked for each wire transmission (out_port, bytes);
  /// netsim supplies it, standalone tests may pass a collector or nothing.
  using TransmitFn = std::function<void(PortId, const Packet&)>;

  SoftSwitch(std::uint32_t switch_id, std::uint32_t num_ports,
             EventQueue& queue, CostParams params = {});
  ~SoftSwitch();

  // Not copyable/movable: observers and registry collectors hold pointers.
  SoftSwitch(const SoftSwitch&) = delete;
  SoftSwitch& operator=(const SoftSwitch&) = delete;

  void SetProgram(SwitchProgram* program) { program_ = program; }
  void SetTransmit(TransmitFn fn) { transmit_ = std::move(fn); }
  void AddObserver(DataplaneObserver* obs) { observers_.push_back(obs); }
  void RemoveObserver(DataplaneObserver* obs);

  /// Full pipeline for one arriving packet: stamp identity, parse, observe
  /// arrival, run the program, observe egress, transmit.
  void ReceivePacket(PortId in_port, Packet pkt);

  /// Program-originated packet (e.g. an ARP proxy reply). Emits an egress
  /// event with a fresh packet id and transmits.
  void EmitPacket(PortId out_port, Packet pkt);

  /// Out-of-band link status change: notifies the program and observers.
  void SetLinkStatus(PortId port, bool up);
  bool LinkUp(PortId port) const;

  /// Flush point for batching observers: call when the packet source goes
  /// idle or before reading monitor results, so buffered events (see
  /// DataplaneObserver::FlushEvents) are delivered with unchanged timeout
  /// semantics.
  void FlushObservers();

  std::uint32_t switch_id() const { return switch_id_; }
  std::uint32_t num_ports() const { return num_ports_; }
  EventQueue& queue() { return queue_; }
  const CostParams& params() const { return params_; }

  /// DEPRECATED shim (one PR): read modeled costs via TelemetrySnapshot()
  /// / CollectInto() under `dataplane.switch.<id>.*` instead.
  [[deprecated("query switch costs via telemetry::Snapshot")]]
  CostCounters& counters() {
    return counters_;
  }

  /// Publishes `dataplane.switch.<id>.{packets,table_lookups,
  /// state_table_ops,register_ops,flow_mods,controller_msgs,
  /// processing_ns}` counters into `snap`.
  void CollectInto(telemetry::Snapshot& snap) const;
  telemetry::Snapshot TelemetrySnapshot() const;

  /// Registers a snapshot-time collector and arms the per-packet modeled
  /// processing-cost histogram `dataplane.switch.<id>.packet_cost_ns`
  /// (recorded for every ReceivePacket). Pass nullptr to detach; the
  /// switch detaches itself on destruction.
  void AttachTelemetry(telemetry::MetricsRegistry* registry);

  /// Parse depth used at ingress. Default L7 (the ideal switch; backends
  /// with fixed parsing use their own shallower re-parse).
  void set_parse_depth(ParseDepth d) { parse_depth_ = d; }
  ParseDepth parse_depth() const { return parse_depth_; }

 private:
  void Observe(const DataplaneEvent& event);
  void EmitEgress(const ParsedPacket& view, PacketId id,
                  const ForwardDecision& decision,
                  std::uint32_t packet_bytes);
  FieldMap BaseMeta() const;

  std::uint32_t switch_id_;
  std::uint32_t num_ports_;
  EventQueue& queue_;
  CostParams params_;
  CostCounters counters_;
  SwitchProgram* program_ = nullptr;
  TransmitFn transmit_;
  std::vector<DataplaneObserver*> observers_;
  std::vector<bool> link_up_;
  std::uint64_t next_packet_id_ = 1;
  ParseDepth parse_depth_ = ParseDepth::kL7;
  telemetry::MetricsRegistry* registry_ = nullptr;
  telemetry::Histogram* packet_cost_hist_ = nullptr;
  std::uint64_t collector_token_ = 0;
};

}  // namespace swmon
