// Dataplane cost model.
//
// The paper's Sec 3.3 performance claims are about *relative* costs of
// switch mechanisms: traversing one more match-action table per packet,
// updating state through the fast path (registers, OpenState tables) versus
// the slow path (OpenFlow flow-mods / OVS learn), and controller round
// trips. The soft switch charges these modeled costs as it executes, and
// benches report the accumulated per-packet processing time.
//
// Defaults are order-of-magnitude figures from the literature the paper
// cites (hardware SRAM table lookup ~tens of ns; OVS flow-mod ~hundreds of
// microseconds; controller RTT ~ms). Absolute values are not the claim —
// the ratios are.
#pragma once

#include <cstdint>

#include "common/sim_time.hpp"

namespace swmon {

struct CostParams {
  Duration table_lookup = Duration::Nanos(30);     // one match-action stage
  Duration state_table_op = Duration::Nanos(40);   // OpenState XFSM step
  Duration register_op = Duration::Nanos(10);      // P4 register read/write
  Duration flow_mod = Duration::Micros(250);       // slow-path rule install
  Duration controller_rtt = Duration::Millis(1);   // packet-in round trip
  Duration parse_l4 = Duration::Nanos(50);
  Duration parse_l7 = Duration::Nanos(200);

  /// Slow-path capacity: flow-mods applied per second (OVS-like).
  std::int64_t flow_mods_per_sec = 4000;
};

/// Running totals for one switch (or one compiled monitor).
struct CostCounters {
  std::uint64_t packets = 0;
  std::uint64_t table_lookups = 0;
  std::uint64_t state_table_ops = 0;
  std::uint64_t register_ops = 0;
  std::uint64_t flow_mods = 0;
  std::uint64_t controller_msgs = 0;
  Duration processing_time = Duration::Zero();  // inline (latency-adding) work

  void Reset() { *this = CostCounters{}; }

  CostCounters& operator+=(const CostCounters& o) {
    packets += o.packets;
    table_lookups += o.table_lookups;
    state_table_ops += o.state_table_ops;
    register_ops += o.register_ops;
    flow_mods += o.flow_mods;
    controller_msgs += o.controller_msgs;
    processing_time += o.processing_time;
    return *this;
  }
};

}  // namespace swmon
