// Priority match-action flow tables with OpenFlow-style timeouts.
//
// Lookup models hardware TCAM semantics: one table traversal costs one
// lookup regardless of entry count (the Varanus scaling claim in Sec 3.3 is
// about the *number of tables* in the pipeline, not entries per table).
// Entries support idle and hard timeouts; expiry is detected lazily on
// lookup and eagerly via SweepExpired, which also drives Varanus-style
// timeout actions (Feature 7): the sweep reports each expired entry so the
// owner can run its expiry continuation.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/sim_time.hpp"
#include "dataplane/match.hpp"

namespace swmon {

struct FlowEntry {
  std::uint32_t priority = 0;
  MatchSet match;
  /// Owner-defined tag identifying what a hit means (e.g. which monitor
  /// transition this entry encodes).
  std::uint64_t cookie = 0;
  /// Zero duration = no timeout of that kind.
  Duration idle_timeout = Duration::Zero();
  Duration hard_timeout = Duration::Zero();

  // Bookkeeping (maintained by the table).
  SimTime installed_at = SimTime::Zero();
  SimTime last_used = SimTime::Zero();
  std::uint64_t hit_count = 0;
};

class FlowTable {
 public:
  /// Adds an entry; returns a stable handle usable with Remove.
  std::uint64_t Add(FlowEntry entry, SimTime now);

  /// Removes the entry with the given handle. Returns false if absent.
  bool Remove(std::uint64_t handle);

  /// Removes all entries whose cookie equals `cookie`; returns count.
  std::size_t RemoveByCookie(std::uint64_t cookie);

  /// Highest-priority live entry matching `fields` (ties: oldest install
  /// wins, as in OpenFlow's undefined-order-made-deterministic). Expired
  /// entries are treated as absent. Updates hit stats on the winner.
  const FlowEntry* Lookup(const FieldMap& fields, SimTime now);

  /// Removes entries expired at `now`, invoking `on_expired` for each
  /// (Feature 7 hook). Safe for the callback to Add entries.
  std::size_t SweepExpired(
      SimTime now, const std::function<void(const FlowEntry&)>& on_expired);

  std::size_t size() const { return slots_.size(); }
  std::uint64_t lookups() const { return lookups_; }

  /// All live entries (testing/introspection).
  std::vector<const FlowEntry*> Entries() const;

 private:
  struct Slot {
    std::uint64_t handle;
    FlowEntry entry;
  };

  static bool Expired(const FlowEntry& e, SimTime now);

  std::vector<Slot> slots_;  // kept sorted by (priority desc, handle asc)
  std::uint64_t next_handle_ = 1;
  std::uint64_t lookups_ = 0;
};

}  // namespace swmon
