// Flow keys: projections of a FieldMap onto an ordered field list.
//
// OpenState's lookup/update scopes, FAST's hash keys, and the monitor's
// exact/symmetric instance identification all reduce to "extract these
// fields in this order and compare/hash the value tuple".
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/hash.hpp"
#include "packet/field.hpp"

namespace swmon {

struct FlowKey {
  std::vector<std::uint64_t> values;

  bool operator==(const FlowKey&) const = default;

  std::uint64_t Hash() const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (auto v : values) {
      h ^= v;
      h *= 0x100000001b3ULL;
      h ^= h >> 29;
    }
    return h;
  }
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const {
    return static_cast<std::size_t>(k.Hash());
  }
};

/// Projects `fields` onto `scope`. Returns nullopt when any scope field is
/// absent from the event (such an event cannot be mapped to a flow).
inline std::optional<FlowKey> ProjectKey(const FieldMap& fields,
                                         const std::vector<FieldId>& scope) {
  FlowKey key;
  key.values.reserve(scope.size());
  for (FieldId f : scope) {
    const auto v = fields.Get(f);
    if (!v) return std::nullopt;
    key.values.push_back(*v);
  }
  return key;
}

/// Deterministic hash of the given event fields onto [base, base+modulus).
/// Shared by the load-balancer app and the monitor's kHashPort binding so
/// that "the port the device should pick" and "the port the monitor
/// expects" are computed identically. Requires all fields present.
inline std::uint64_t HashFieldsToRange(const FieldMap& fields,
                                       const std::vector<FieldId>& inputs,
                                       std::uint64_t modulus,
                                       std::uint64_t base) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (FieldId f : inputs) {
    const std::uint64_t v = fields.GetUnchecked(f);
    h ^= v;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  }
  return h % modulus + base;
}

}  // namespace swmon
