#include "dataplane/state_table.hpp"

namespace swmon {

std::uint64_t StateTable::Lookup(const FieldMap& fields, SimTime now) {
  ++ops_;
  const auto key = ProjectKey(fields, lookup_scope_);
  if (!key) return kDefaultState;
  const auto it = states_.find(*key);
  if (it == states_.end()) return kDefaultState;
  if (it->second.expires <= now) {
    states_.erase(it);
    return kDefaultState;
  }
  return it->second.state;
}

bool StateTable::Update(const FieldMap& fields, std::uint64_t state,
                        SimTime now, Duration ttl) {
  ++ops_;
  const auto key = ProjectKey(fields, update_scope_);
  if (!key) return false;
  const SimTime expires =
      ttl > Duration::Zero() ? now + ttl : SimTime::Infinity();
  if (state == kDefaultState && ttl == Duration::Zero()) {
    states_.erase(*key);
    return true;
  }
  states_[*key] = Cell{state, expires};
  return true;
}

bool StateTable::Erase(const FieldMap& fields) {
  ++ops_;
  const auto key = ProjectKey(fields, update_scope_);
  if (!key) return false;
  return states_.erase(*key) > 0;
}

}  // namespace swmon
