#include "dataplane/match.hpp"

#include <cstdio>

namespace swmon {

std::string FieldMatch::ToString() const {
  char buf[96];
  if (mask == ~std::uint64_t{0}) {
    std::snprintf(buf, sizeof(buf), "%s%s=%llu", FieldName(field),
                  negate ? "!" : "", static_cast<unsigned long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%s%s=%llu/%llx", FieldName(field),
                  negate ? "!" : "", static_cast<unsigned long long>(value),
                  static_cast<unsigned long long>(mask));
  }
  return buf;
}

std::string MatchSet::ToString() const {
  if (terms_.empty()) return "[any]";
  std::string out = "[";
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    if (i) out += ", ";
    out += terms_[i].ToString();
  }
  out += "]";
  return out;
}

}  // namespace swmon
