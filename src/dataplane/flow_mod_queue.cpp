#include "dataplane/flow_mod_queue.hpp"

#include "common/assert.hpp"

namespace swmon {

SimTime FlowModQueue::Submit(SimTime now, Mutation m) {
  SWMON_ASSERT(params_.flow_mods_per_sec > 0);
  const Duration service =
      Duration::Seconds(1) / params_.flow_mods_per_sec;
  const SimTime start = std::max(now, prev_service_end_);
  prev_service_end_ = start + service;
  const SimTime completes = prev_service_end_ + params_.flow_mod;
  queue_.push_back(Pending{completes, std::move(m)});
  last_completion_ = completes;
  ++submitted_;
  return completes;
}

std::size_t FlowModQueue::Advance(SimTime now) {
  std::size_t applied = 0;
  while (!queue_.empty() && queue_.front().completes <= now) {
    Pending p = std::move(queue_.front());
    queue_.pop_front();
    p.mutation(p.completes);
    ++applied;
  }
  return applied;
}

}  // namespace swmon
