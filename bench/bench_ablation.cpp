// Ablations of the design choices DESIGN.md §5 calls out:
//
//   A. Non-refreshing timeout-action timers (Sec 2.3's subtlety): the sound
//      monitor detects a never-answered request stream; the naive variant
//      (timer reset by every repeated request) never fires.
//   B. Instance eviction cap (the paper's space-consumption concern):
//      detection recall vs the max_instances bound.
#include <cstdio>

#include "bench_util.hpp"
#include "monitor/engine.hpp"
#include "properties/catalog.hpp"
#include "telemetry/snapshot.hpp"

namespace swmon {
namespace {

/// A request stream for a known address: a reply is learned, then requests
/// repeat every `gap`, and NOTHING ever answers — a violation at
/// first_request + deadline under sound semantics.
std::vector<DataplaneEvent> NeverAnsweredStream(Duration gap,
                                                std::size_t requests) {
  std::vector<DataplaneEvent> events;
  DataplaneEvent learn;
  learn.type = DataplaneEventType::kArrival;
  learn.time = SimTime::Zero() + Duration::Millis(1);
  learn.fields.Set(FieldId::kArpOp, 2);
  learn.fields.Set(FieldId::kArpSenderIp, 42);
  events.push_back(learn);

  SimTime t = SimTime::Zero() + Duration::Millis(10);
  for (std::size_t i = 0; i < requests; ++i) {
    DataplaneEvent req;
    req.type = DataplaneEventType::kArrival;
    req.time = t;
    req.fields.Set(FieldId::kArpOp, 1);
    req.fields.Set(FieldId::kArpTargetIp, 42);
    events.push_back(req);
    t = t + gap;
  }
  return events;
}

}  // namespace
}  // namespace swmon

int main() {
  using namespace swmon;
  bench::Header(
      "bench_ablation", "design-choice ablations (DESIGN.md §5)",
      "Sec 2.3: 'if [timeout-action timers] were reset whenever the "
      "preceding observation fired, a never-answered sequence of requests "
      "every (T-1) seconds would not be detected'");

  bench::Section(
      "A. timeout-action timer semantics (ARP reply deadline T = 1s)");
  std::printf("%14s | %18s | %18s\n", "request gap", "sound (no refresh)",
              "naive (refreshing)");
  for (const Duration gap :
       {Duration::Millis(500), Duration::Millis(900), Duration::Millis(1100),
        Duration::Millis(2000)}) {
    const auto events = NeverAnsweredStream(gap, 20);
    const SimTime end = events.back().time + Duration::Seconds(5);

    MonitorEngine sound(ArpProxyReplyDeadline());
    MonitorConfig naive_cfg;
    naive_cfg.naive_timeout_refresh = true;
    MonitorEngine naive(ArpProxyReplyDeadline(), naive_cfg);
    for (const auto& ev : events) {
      sound.ProcessEvent(ev);
      naive.ProcessEvent(ev);
    }
    // Note: after the request burst ends, even the naive timer eventually
    // fires; the paper's scenario is a CONTINUING stream, so the relevant
    // comparison is during it.
    const std::size_t sound_during = sound.violations().size();
    const std::size_t naive_during = naive.violations().size();
    sound.AdvanceTime(end);
    naive.AdvanceTime(end);
    std::printf("%14s | %7zu during +%zu | %7zu during +%zu\n",
                gap.ToString().c_str(), sound_during,
                sound.violations().size() - sound_during, naive_during,
                naive.violations().size() - naive_during);
  }
  std::printf(
      "\nShape check: with sub-deadline gaps the sound monitor fires during "
      "the stream (deadline from the FIRST request); the naive monitor "
      "stays silent for as long as requests keep arriving.\n");

  bench::Section("B. instance cap vs detection recall (firewall, 64 conns)");
  std::printf("%14s | %10s | %10s | %8s\n", "max_instances", "violations",
              "evicted", "recall");
  for (const std::size_t cap : {0u, 64u, 32u, 16u, 8u}) {
    MonitorConfig mc;
    mc.eviction = EvictionConfig{}.WithMaxInstances(cap);
    MonitorEngine engine(FirewallReturnNotDropped(), mc);
    // 64 connections open, then each gets a dropped return (reverse order,
    // so small caps keep only the newest instances and catch those).
    for (int c = 0; c < 64; ++c) {
      DataplaneEvent out;
      out.type = DataplaneEventType::kArrival;
      out.time = SimTime::Zero() + Duration::Millis(c + 1);
      out.fields.Set(FieldId::kInPort, 1);
      out.fields.Set(FieldId::kIpSrc, 100 + c);
      out.fields.Set(FieldId::kIpDst, 7);
      engine.ProcessEvent(out);
    }
    for (int c = 63; c >= 0; --c) {
      DataplaneEvent drop;
      drop.type = DataplaneEventType::kEgress;
      drop.time = SimTime::Zero() + Duration::Millis(100 + (63 - c));
      drop.fields.Set(FieldId::kIpSrc, 7);
      drop.fields.Set(FieldId::kIpDst, 100 + c);
      drop.fields.Set(FieldId::kEgressAction,
                      static_cast<std::uint64_t>(EgressActionValue::kDrop));
      engine.ProcessEvent(drop);
    }
    telemetry::Snapshot snap;
    engine.CollectInto(snap, "fw");
    std::printf("%14zu | %10zu | %10llu | %7.0f%%\n", cap,
                engine.violations().size(),
                static_cast<unsigned long long>(snap.counter(
                    "monitor.engine.fw.instances_evicted")),
                engine.violations().size() * 100.0 / 64.0);
  }
  std::printf(
      "\nShape check: recall degrades gracefully with the cap — bounding "
      "monitor state (the paper's space concern) trades exactly the oldest "
      "attempts.\n");
  return 0;
}
