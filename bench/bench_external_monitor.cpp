// E6 — Sec 1: "Monitoring the necessary packets, rather than only
// controller messages, quickly becomes expensive to do externally: ... an
// external monitor must either see all such packets" (for the learning
// switch, ANY packet can witness a violation).
//
// Compare, over a growing learning-switch workload:
//   external: every dataplane event mirrored to an off-switch monitor
//             (ControllerMonitor) — bytes on the control channel grow with
//             traffic; detection lags by half an RTT.
//   on-switch: the monitor runs in the dataplane; the control channel
//             carries only violation notifications.
#include <cstdio>

#include "backends/controller_monitor.hpp"
#include "bench_util.hpp"
#include "properties/catalog.hpp"
#include "workload/learning_scenario.hpp"

int main() {
  using namespace swmon;
  bench::Header(
      "bench_external_monitor", "Sec 1 (why monitor on the switch)",
      "external monitoring must redirect (a copy of) all traffic; on-switch "
      "monitoring sends only alerts — the gap grows linearly with traffic");

  const CostParams params;
  // A violation notification: property id + timestamp + limited-provenance
  // bindings; generously 64 bytes.
  const std::size_t kAlertBytes = 64;

  std::printf("\n%8s | %10s | %14s | %14s | %9s | %12s\n", "rounds", "packets",
              "external B", "on-switch B", "ratio", "extra delay");
  for (std::size_t rounds : {5u, 10u, 20u, 40u, 80u, 160u}) {
    LearningScenarioConfig config;
    config.rounds = rounds;
    config.hosts = 8;
    // A realistic trace: mostly-correct behaviour with a handful of
    // violations (stale unicasts after a link flap).
    config.fault = LearningSwitchFault::kNoFlushOnLinkDown;
    config.inject_link_down = true;
    config.options.seed = 3;
    config.options.keep_trace = true;
    const auto out = RunLearningScenario(config);

    // External monitor: replay the mirrored event stream.
    ControllerMonitor external(LearningSwitchLinkDownFlush(), params);
    out.trace->ReplayInto(external);
    external.AdvanceTime(out.end_time);

    // On-switch monitoring already happened inside the scenario run; its
    // control-channel traffic is the notifications alone.
    const std::size_t violations = out.ViolationsOf("lsw-linkdown-flush");
    const std::size_t onswitch_bytes = violations * kAlertBytes;
    const std::uint64_t external_bytes =
        external.TelemetrySnapshot("ext").counter(
            "backend.controller.ext.bytes_mirrored");

    std::printf("%8zu | %10zu | %14llu | %14zu | %8.0fx | %9lld us\n", rounds,
                out.packets_injected,
                static_cast<unsigned long long>(external_bytes),
                onswitch_bytes,
                onswitch_bytes
                    ? static_cast<double>(external_bytes) /
                          static_cast<double>(onswitch_bytes)
                    : 0.0,
                static_cast<long long>(params.controller_rtt.nanos() / 2000));
  }
  std::printf(
      "\nShape check: external bytes grow with traffic volume while "
      "on-switch bytes track only the violation count; every external "
      "detection additionally lags by the mirror path delay.\n");
  return 0;
}
