// E5 — Feature 9 (side-effect control): inline vs split state updates.
//
// "If the switch splits processing, the monitor has minimal impact on
// throughput, but its state might lag behind ... leading to monitor errors.
// In contrast, if the switch inlines updates, its state will be up to date,
// but at the expense of increased forwarding latency."
//
// Sweep the gap between a connection's establishing packet and the
// (violating) drop of its return packet. For each gap, run the same trace
// through: the reference engine (ideal switch), an inline learn-action
// monitor, and a split learn-action monitor. Report detections and the
// added forwarding latency.
#include <cstdio>

#include "backends/executor.hpp"
#include "bench_util.hpp"
#include "monitor/engine.hpp"
#include "properties/catalog.hpp"

namespace swmon {
namespace {

std::vector<DataplaneEvent> BackToBackTrace(std::size_t pairs, Duration gap) {
  std::vector<DataplaneEvent> events;
  for (std::size_t c = 0; c < pairs; ++c) {
    const SimTime base = SimTime::Zero() + Duration::Millis(10) * (c + 1);
    DataplaneEvent out;
    out.type = DataplaneEventType::kArrival;
    out.time = base;
    out.fields.Set(FieldId::kInPort, 1);
    out.fields.Set(FieldId::kIpSrc, 5000 + c);
    out.fields.Set(FieldId::kIpDst, 9);
    events.push_back(out);

    DataplaneEvent drop;
    drop.type = DataplaneEventType::kEgress;
    drop.time = base + gap;
    drop.fields.Set(FieldId::kIpSrc, 9);
    drop.fields.Set(FieldId::kIpDst, 5000 + c);
    drop.fields.Set(FieldId::kEgressAction,
                    static_cast<std::uint64_t>(EgressActionValue::kDrop));
    events.push_back(drop);
  }
  return events;
}

}  // namespace
}  // namespace swmon

int main() {
  using namespace swmon;
  bench::Header(
      "bench_sideeffect", "Feature 9 / Sec 2.4 (side-effect control)",
      "split updates keep forwarding fast but the lagging monitor misses "
      "violations that arrive within the update latency; inline updates "
      "catch everything but tax every state-changing packet with the "
      "update's latency — the option should be exposed, and here it is");

  const Property prop = FirewallReturnNotDropped();
  const CostParams params;  // flow_mod = 250us
  const std::size_t kPairs = 200;

  std::printf("\n%12s | %9s | %9s | %9s | %16s\n", "gap", "reference",
              "inline", "split", "inline latency/pkt");
  // Stale window per update: 250us slow-path latency + 250us service time
  // (4000 mods/s): detections should flip between 400us and 600us.
  for (const Duration gap :
       {Duration::Micros(1), Duration::Micros(10), Duration::Micros(100),
        Duration::Micros(250), Duration::Micros(400), Duration::Micros(600),
        Duration::Millis(1), Duration::Millis(5)}) {
    const auto events = BackToBackTrace(kPairs, gap);

    MonitorEngine reference(prop);
    FragmentExecutor inline_mon(
        prop, std::make_unique<FastLearnStore>(params, /*inline=*/true),
        params);
    FragmentExecutor split_mon(
        prop, std::make_unique<FastLearnStore>(params, /*inline=*/false),
        params);
    for (const auto& ev : events) {
      reference.ProcessEvent(ev);
      inline_mon.OnDataplaneEvent(ev);
      split_mon.OnDataplaneEvent(ev);
    }
    const double inline_latency_ns =
        static_cast<double>(inline_mon.costs().processing_time.nanos()) /
        static_cast<double>(events.size());
    std::printf("%12s | %9zu | %9zu | %9zu | %13.0f ns\n",
                gap.ToString().c_str(), reference.violations().size(),
                inline_mon.violations().size(), split_mon.violations().size(),
                inline_latency_ns);
  }
  std::printf(
      "\nShape check: split detections collapse once the violating packet "
      "arrives within the slow-path latency (250us + service time); inline "
      "detects everything at every gap but adds ~the full update latency to "
      "each state-changing packet.\n");
  return 0;
}
