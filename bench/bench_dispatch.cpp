// Dispatch — the pre-filtered event-dispatch layer (DESIGN.md "Dispatch"):
// per-event monitor cost with N catalog properties attached, interest-
// signature filtering (MonitorSet) versus the all-engines broadcast
// baseline. Sec 3.3's discipline is that per-packet monitor cost must not
// scale with what *cannot* match; the filter delivers a single-type event
// stream only to the engines whose property has a pattern for that type,
// the rest merely observe the timestamp.
//
// Emits BENCH_dispatch.json via bench_util's JsonReporter (the `bench`
// CMake target points SWMON_BENCH_JSON_DIR at the build tree).
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "monitor/engine.hpp"
#include "monitor/features.hpp"
#include "monitor/monitor_set.hpp"
#include "monitor/property_builder.hpp"
#include "properties/catalog.hpp"
#include "telemetry/snapshot.hpp"

namespace swmon {
namespace {

constexpr std::size_t kEvents = 20000;
constexpr int kReps = 5;

std::vector<DataplaneEvent> SingleTypeStream(DataplaneEventType type,
                                             std::size_t count,
                                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<DataplaneEvent> events;
  events.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    DataplaneEvent ev;
    ev.type = type;
    ev.time = SimTime::Zero() + Duration::Micros(static_cast<std::int64_t>(i));
    switch (type) {
      case DataplaneEventType::kArrival:
        ev.fields.Set(FieldId::kInPort, 1 + rng.NextBelow(4));
        ev.fields.Set(FieldId::kPacketId, i + 1);
        ev.fields.Set(FieldId::kIpSrc, 1000 + rng.NextBelow(64));
        ev.fields.Set(FieldId::kIpDst, 2000 + rng.NextBelow(64));
        ev.fields.Set(FieldId::kIpProto, 6);
        ev.fields.Set(FieldId::kL4SrcPort, 30000 + rng.NextBelow(512));
        ev.fields.Set(FieldId::kL4DstPort, rng.NextBool(0.5) ? 80 : 443);
        break;
      case DataplaneEventType::kEgress:
        ev.fields.Set(FieldId::kPacketId, i + 1);
        ev.fields.Set(FieldId::kIpSrc, 2000 + rng.NextBelow(64));
        ev.fields.Set(FieldId::kIpDst, 1000 + rng.NextBelow(64));
        ev.fields.Set(FieldId::kOutPort, 1 + rng.NextBelow(4));
        ev.fields.Set(FieldId::kEgressAction,
                      static_cast<std::uint64_t>(
                          rng.NextBool(0.1) ? EgressActionValue::kDrop
                                            : EgressActionValue::kForward));
        break;
      case DataplaneEventType::kLinkStatus:
        ev.fields.Set(FieldId::kLinkId, 1 + rng.NextBelow(4));
        ev.fields.Set(FieldId::kLinkUp, rng.NextBool(0.5) ? 1 : 0);
        break;
    }
    events.push_back(std::move(ev));
  }
  return events;
}

std::vector<Property> Table1Properties(std::size_t count) {
  std::vector<Property> props;
  for (const CatalogEntry& e : BuildCatalog()) {
    if (!e.in_table1) continue;
    props.push_back(e.property);
    if (props.size() == count) break;
  }
  return props;
}

struct RunResult {
  double ns_per_event = 0;
  std::uint64_t dispatched = 0;
  std::uint64_t filtered = 0;
  std::size_t violations = 0;
};

double BestNsPerEvent(const std::function<void()>& run, std::size_t events) {
  double best = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    run();
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        static_cast<double>(events);
    if (rep == 0 || ns < best) best = ns;
  }
  return best;
}

RunResult RunFiltered(const std::vector<Property>& props,
                      const std::vector<DataplaneEvent>& events) {
  RunResult out;
  out.ns_per_event = BestNsPerEvent(
      [&] {
        MonitorSet set;
        for (const Property& p : props) set.Add(p);
        for (const DataplaneEvent& ev : events) set.OnDataplaneEvent(ev);
      },
      events.size());
  // One more instrumented pass for the counters.
  MonitorSet set;
  for (const Property& p : props) set.Add(p);
  for (const DataplaneEvent& ev : events) set.OnDataplaneEvent(ev);
  const telemetry::Snapshot snap = set.TelemetrySnapshot();
  out.dispatched = snap.counter("monitor.set.events_dispatched");
  out.filtered = snap.counter("monitor.set.events_filtered");
  out.violations = set.TotalViolations();
  return out;
}

RunResult RunBroadcast(const std::vector<Property>& props,
                       const std::vector<DataplaneEvent>& events) {
  RunResult out;
  const auto make = [&] {
    std::vector<std::unique_ptr<MonitorEngine>> engines;
    for (const Property& p : props)
      engines.push_back(std::make_unique<MonitorEngine>(p));
    return engines;
  };
  out.ns_per_event = BestNsPerEvent(
      [&] {
        auto engines = make();
        for (const DataplaneEvent& ev : events)
          for (auto& e : engines) e->ProcessEvent(ev);
      },
      events.size());
  auto engines = make();
  for (const DataplaneEvent& ev : events)
    for (auto& e : engines) e->ProcessEvent(ev);
  out.dispatched = events.size() * engines.size();
  for (auto& e : engines) out.violations += e->violations().size();
  return out;
}

/// A property interested in every event type whose patterns never match:
/// what it measures is pure delivery overhead — the dispatch layer's cost
/// on top of a direct ProcessEvent loop.
Property AllTypesProbe() {
  PropertyBuilder b("all-types-probe", "never-matching any-type patterns");
  b.AddStage("first").Match(
      PatternBuilder::AnyEvent().Eq(FieldId::kInPort, 9999).Build());
  b.AddStage("second").Match(
      PatternBuilder::AnyEvent().Eq(FieldId::kInPort, 9998).Build());
  return std::move(b).Build();
}

std::vector<DataplaneEvent> MixedTypeStream(std::size_t count,
                                            std::uint64_t seed) {
  std::vector<DataplaneEvent> events;
  events.reserve(count);
  const DataplaneEventType kinds[] = {DataplaneEventType::kArrival,
                                      DataplaneEventType::kEgress,
                                      DataplaneEventType::kLinkStatus};
  for (std::size_t i = 0; i < count; ++i) {
    auto batch = SingleTypeStream(kinds[i % 3], 1, seed + i);
    batch[0].time = SimTime::Zero() + Duration::Micros(
                                          static_cast<std::int64_t>(i));
    events.push_back(std::move(batch[0]));
  }
  return events;
}

}  // namespace
}  // namespace swmon

int main() {
  using namespace swmon;
  bench::Header(
      "bench_dispatch", "Sec 3.3 (constant per-packet monitor cost)",
      "with N properties attached, an event should only cost the engines "
      "whose property can react to its type, not all N");

  bench::JsonReporter json("dispatch");

  const struct {
    DataplaneEventType type;
    const char* name;
  } streams[] = {
      {DataplaneEventType::kArrival, "arrival"},
      {DataplaneEventType::kEgress, "egress"},
      {DataplaneEventType::kLinkStatus, "link_status"},
  };

  {
    bench::Section("interest signatures (Table 1 catalog)");
    for (const CatalogEntry& e : BuildCatalog()) {
      if (!e.in_table1) continue;
      std::printf("  %-6s %-28s %s\n", e.id, e.property.name.c_str(),
                  InterestSignatureString(InterestSignature(e.property))
                      .c_str());
    }
  }

  for (const std::size_t nprops : {1u, 4u, 13u}) {
    const std::vector<Property> props = Table1Properties(nprops);
    bench::Section(
        ("per-event cost, " + std::to_string(props.size()) + " properties")
            .c_str());
    std::printf("%12s | %14s | %14s | %7s | %10s | %10s\n", "stream",
                "filtered ns/ev", "broadcast ns/ev", "ratio", "dispatched",
                "filtered");
    for (const auto& s : streams) {
      const auto events = SingleTypeStream(s.type, kEvents, 42);
      const RunResult filt = RunFiltered(props, events);
      const RunResult bcast = RunBroadcast(props, events);
      if (filt.violations != bcast.violations) {
        std::printf("SEMANTICS MISMATCH on %s: filtered=%zu broadcast=%zu\n",
                    s.name, filt.violations, bcast.violations);
        return 1;
      }
      const double ratio = filt.ns_per_event > 0
                               ? bcast.ns_per_event / filt.ns_per_event
                               : 0;
      std::printf("%12s | %14.1f | %15.1f | %6.2fx | %10llu | %10llu\n",
                  s.name, filt.ns_per_event, bcast.ns_per_event, ratio,
                  static_cast<unsigned long long>(filt.dispatched),
                  static_cast<unsigned long long>(filt.filtered));
      json.AddRow()
          .Str("stream", s.name)
          .Num("properties", static_cast<double>(props.size()))
          .Num("filtered_ns_per_event", filt.ns_per_event)
          .Num("broadcast_ns_per_event", bcast.ns_per_event)
          .Num("speedup", ratio)
          .Num("events_dispatched", static_cast<double>(filt.dispatched))
          .Num("events_filtered", static_cast<double>(filt.filtered))
          .Num("violations", static_cast<double>(filt.violations));
    }
  }

  std::printf(
      "\nShape check: single-type streams reach only the interested subset "
      "(link_status most dramatically — no Table-1 property listens, so "
      "every engine takes the constant clock-only path), keeping filtered "
      "ns/event well below the broadcast baseline as properties are "
      "added.\n");

  // Regression guard: a property subscribed to every event type gains
  // nothing from interest filtering, so dispatching to it must not cost
  // more than calling the engine directly (the all-interested fast path
  // skips the filtered-walk bookkeeping entirely). 1.5x absorbs timer
  // noise; the regression this guards was ~2x and up.
  {
    bench::Section("all-types property: dispatch overhead vs direct engine");
    const Property probe = AllTypesProbe();
    const auto events = MixedTypeStream(kEvents, 7);
    const double direct_ns = BestNsPerEvent(
        [&] {
          MonitorEngine engine(probe);
          for (const DataplaneEvent& ev : events) engine.ProcessEvent(ev);
        },
        events.size());
    const double dispatched_ns = BestNsPerEvent(
        [&] {
          MonitorSet set;
          set.Add(probe);
          for (const DataplaneEvent& ev : events) set.OnDataplaneEvent(ev);
        },
        events.size());
    const double overhead =
        direct_ns > 0 ? dispatched_ns / direct_ns : 0;
    std::printf("  direct %.1f ns/ev | dispatched %.1f ns/ev | %.2fx\n",
                direct_ns, dispatched_ns, overhead);
    json.AddRow()
        .Str("stream", "all_types_guard")
        .Num("direct_ns_per_event", direct_ns)
        .Num("dispatched_ns_per_event", dispatched_ns)
        .Num("overhead", overhead);
    if (overhead > 1.5) {
      std::printf("DISPATCH OVERHEAD REGRESSION: %.2fx > 1.5x budget for an "
                  "all-types property\n",
                  overhead);
      json.Flush();
      return 1;
    }
  }
  json.Flush();
  return 0;
}
