// Batch-mode compiled execution vs the scalar compiled path (DESIGN.md
// §5k, EXPERIMENTS.md E14): per-event cost of MonitorSet delivery with the
// micro-batcher on (SetBatching) against per-event delivery, both running
// the compiled engine. The batch path buys three things the scalar loop
// cannot: one stage-0 routing hash per fused key-tuple group per event
// (instead of one per property), a prefetch pass that issues OpenMap cell
// and slab-record prefetches a fixed distance ahead, and engine-outer loop
// order that keeps one engine's bytecode and tables hot across the run.
//
// Batching is required to be observationally bit-identical to scalar
// delivery, so every swept configuration is also a differential check —
// any violation mismatch fails the bench (exit 1).
//
// Sweeps: batch window x property count, plus a prefetch-distance ablation
// at the largest configuration. Emits BENCH_batch.json via JsonReporter.
// The CI smoke step runs under SWMON_BENCH_TINY and enforces the gate:
// best batched 13-property ns/event must be <= 0.9x scalar compiled.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "monitor/compiled/engine.hpp"
#include "monitor/monitor_set.hpp"
#include "properties/catalog.hpp"

namespace swmon {
namespace {

// Same L3-resident sizing rationale as bench_compiled: the comparison is
// per-event monitor compute, so the event walk must not be DRAM-bound.
// TINY keeps enough laps that the gate ratio is measured, not noise.
const bool kTiny = std::getenv("SWMON_BENCH_TINY") != nullptr;
const std::size_t kEvents = kTiny ? 2000 : 8000;
const int kLaps = kTiny ? 4 : 40;
const int kReps = kTiny ? 2 : 3;

/// SWMON_BATCH — the same knob the daemon reads for serial tenants —
/// names the "deployed" window here: it anchors the prefetch ablation and
/// is always included in the sweep.
std::size_t DeployedWindow() {
  const char* s = std::getenv("SWMON_BATCH");
  if (s == nullptr) return 64;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  return (end != s && *end == '\0' && v > 0) ? static_cast<std::size_t>(v)
                                             : 64;
}

/// The fuzz-test event soup (bench_compiled's mixed stream): all three
/// types, fields sprinkled at random in a small value range so stages
/// chain, instances accumulate, and every property sees relevant events.
std::vector<DataplaneEvent> FuzzStream(std::uint64_t seed, std::size_t count) {
  Rng rng(seed);
  std::vector<DataplaneEvent> events;
  events.reserve(count);
  SimTime t = SimTime::Zero();
  for (std::size_t i = 0; i < count; ++i) {
    DataplaneEvent ev;
    t = t + Duration::Millis(1 + static_cast<std::int64_t>(rng.NextBelow(50)));
    ev.time = t;
    const auto roll = rng.NextBelow(10);
    ev.type = roll < 4   ? DataplaneEventType::kArrival
              : roll < 8 ? DataplaneEventType::kEgress
                         : DataplaneEventType::kLinkStatus;
    for (std::size_t f = 0; f < kNumFieldIds; ++f) {
      if (rng.NextBool(0.35))
        ev.fields.Set(static_cast<FieldId>(f), rng.NextBelow(8));
    }
    events.push_back(std::move(ev));
  }
  return events;
}

/// The probe-bound stream batch mode is built for: arrival events over a
/// large flow population, so every keyed property holds one instance per
/// distinct flow. At full size the aggregate OpenMap/slab state spans
/// several MB — past L2, resident in L3 — and per-event cost is dominated
/// by the stage-0 routing probes all the flow-keyed properties share.
/// (The fuzz soup above is the opposite regime: tiny key space, state in
/// L1/L2, cost dominated by pass execution batching cannot reduce.)
std::vector<DataplaneEvent> KeyedArrivalStream(std::uint64_t seed,
                                               std::size_t count) {
  Rng rng(seed);
  std::vector<DataplaneEvent> events;
  events.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    DataplaneEvent ev;
    ev.type = DataplaneEventType::kArrival;
    ev.time = SimTime::Zero() + Duration::Micros(static_cast<std::int64_t>(i));
    ev.fields.Set(FieldId::kInPort, 1 + rng.NextBelow(4));
    ev.fields.Set(FieldId::kPacketId, i + 1);
    ev.fields.Set(FieldId::kIpSrc, 1000 + rng.NextBelow(256));
    ev.fields.Set(FieldId::kIpDst, 2000 + rng.NextBelow(256));
    ev.fields.Set(FieldId::kIpProto, 6);
    ev.fields.Set(FieldId::kL4SrcPort, 30000 + rng.NextBelow(512));
    ev.fields.Set(FieldId::kL4DstPort, rng.NextBool(0.5) ? 80 : 443);
    events.push_back(std::move(ev));
  }
  return events;
}

std::vector<Property> Table1Properties(std::size_t count) {
  std::vector<Property> props;
  for (const CatalogEntry& e : BuildCatalog()) {
    if (!e.in_table1) continue;
    props.push_back(e.property);
    if (props.size() == count) break;
  }
  return props;
}

double BestNsPerEvent(const std::function<void()>& run, std::size_t events) {
  double best = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    run();
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        static_cast<double>(events);
    if (rep == 0 || ns < best) best = ns;
  }
  return best;
}

/// One measured configuration: MonitorSet delivery of the stream, window 0
/// = scalar per-event path. prefetch_distance < 0 keeps the engine
/// default. Construction (and bytecode compilation) sits inside the timed
/// region like bench_compiled, amortised over the replay laps.
double TimeSet(const std::vector<Property>& props,
               const std::vector<DataplaneEvent>& events, std::size_t window,
               int prefetch_distance) {
  MonitorConfig cfg;
  cfg.engine = EngineKind::kCompiled;
  return BestNsPerEvent(
      [&] {
        MonitorSet set;
        if (window != 0) set.SetBatching(window);
        for (const Property& p : props) {
          PropertyMonitor& eng = set.Add(p, cfg);
          if (prefetch_distance >= 0) {
            if (auto* c = dynamic_cast<CompiledEngine*>(&eng))
              c->set_prefetch_distance(
                  static_cast<std::uint32_t>(prefetch_distance));
          }
        }
        for (int lap = 0; lap < kLaps; ++lap) {
          // Span delivery: batched windows execute straight out of the
          // replay buffer (no per-event copy); window 0 degrades to the
          // same per-event loop as OnDataplaneEvent.
          set.OnDataplaneEvents(events.data(), events.size());
          set.FlushEvents();
        }
      },
      events.size() * static_cast<std::size_t>(kLaps));
}

/// Untimed single pass for the differential check.
std::vector<Violation> RunOnce(const std::vector<Property>& props,
                               const std::vector<DataplaneEvent>& events,
                               std::size_t window, int prefetch_distance) {
  MonitorConfig cfg;
  cfg.engine = EngineKind::kCompiled;
  MonitorSet set;
  if (window != 0) set.SetBatching(window);
  for (const Property& p : props) {
    PropertyMonitor& eng = set.Add(p, cfg);
    if (prefetch_distance >= 0) {
      if (auto* c = dynamic_cast<CompiledEngine*>(&eng))
        c->set_prefetch_distance(
            static_cast<std::uint32_t>(prefetch_distance));
    }
  }
  set.OnDataplaneEvents(events.data(), events.size());
  set.AdvanceTime(events.back().time + Duration::Seconds(300));
  return set.AllViolations();
}

bool Identical(const std::vector<Violation>& a,
               const std::vector<Violation>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].property != b[i].property || a[i].time != b[i].time ||
        a[i].instance_id != b[i].instance_id ||
        a[i].trigger_stage != b[i].trigger_stage ||
        a[i].bindings != b[i].bindings)
      return false;
  }
  return true;
}

}  // namespace
}  // namespace swmon

int main() {
  using namespace swmon;
  bench::Header(
      "bench_batch", "DESIGN.md §5k (batch-mode execution)",
      "fused stage-0 hashing + prefetched probes + engine-outer batch "
      "loops cut per-event cost vs scalar compiled delivery, with "
      "bit-identical violation streams at every swept configuration");

  bench::JsonReporter json("batch");
  const std::size_t deployed = DeployedWindow();
  std::vector<std::size_t> windows = {8, 32, 64, 256};
  if (std::find(windows.begin(), windows.end(), deployed) == windows.end()) {
    windows.push_back(deployed);
    std::sort(windows.begin(), windows.end());
  }
  const struct {
    const char* name;
    std::vector<DataplaneEvent> events;
  } streams[] = {
      {"keyed_arrival", KeyedArrivalStream(42, kEvents)},
      {"fuzz_soup", FuzzStream(99, kEvents)},
  };
  bool all_identical = true;
  // The gate (and the headline number) is the probe-bound keyed stream at
  // 13 properties — the configuration batch mode exists for.
  double gate_scalar_ns = 0;
  double gate_best_batch_ns = 0;
  std::size_t gate_best_window = 0;

  for (const auto& s : streams) {
    for (const std::size_t nprops : {1u, 4u, 13u}) {
      const std::vector<Property> props = Table1Properties(nprops);
      const std::vector<Violation> reference =
          RunOnce(props, s.events, /*window=*/0, /*prefetch_distance=*/-1);
      const double scalar_ns = TimeSet(props, s.events, 0, -1);
      bench::Section((std::string(s.name) + ", batch window sweep, " +
                      std::to_string(props.size()) + " properties")
                         .c_str());
      std::printf("%8s | %14s | %12s | %8s | %10s\n", "window",
                  "scalar ns/ev", "batch ns/ev", "speedup", "violations");
      for (const std::size_t window : windows) {
        const std::vector<Violation> batched =
            RunOnce(props, s.events, window, -1);
        if (!Identical(reference, batched)) {
          std::printf("SEMANTICS MISMATCH: %s window=%zu props=%zu: "
                      "scalar=%zu batched=%zu violations\n",
                      s.name, window, props.size(), reference.size(),
                      batched.size());
          all_identical = false;
          continue;
        }
        const double batch_ns = TimeSet(props, s.events, window, -1);
        const double speedup = batch_ns > 0 ? scalar_ns / batch_ns : 0;
        std::printf("%8zu | %14.1f | %12.1f | %7.2fx | %10zu\n", window,
                    scalar_ns, batch_ns, speedup, batched.size());
        json.AddRow()
            .Str("stream", s.name)
            .Num("properties", static_cast<double>(props.size()))
            .Num("window", static_cast<double>(window))
            .Num("scalar_ns_per_event", scalar_ns)
            .Num("batch_ns_per_event", batch_ns)
            .Num("speedup", speedup)
            .Num("violations", static_cast<double>(batched.size()));
        if (nprops == 13 && std::string(s.name) == "keyed_arrival") {
          gate_scalar_ns = scalar_ns;
          if (gate_best_window == 0 || batch_ns < gate_best_batch_ns) {
            gate_best_batch_ns = batch_ns;
            gate_best_window = window;
          }
        }
      }
    }
  }

  // Prefetch-distance ablation at the largest configuration: distance 0
  // disables the probe-prefetch pass entirely, isolating its contribution
  // from the hash fusion and loop-order wins.
  {
    const std::vector<Property> props = Table1Properties(13);
    const auto& events = streams[0].events;  // keyed_arrival
    const std::vector<Violation> reference = RunOnce(props, events, 0, -1);
    bench::Section(("prefetch distance ablation, keyed_arrival, "
                    "13 properties, window " +
                    std::to_string(deployed))
                       .c_str());
    std::printf("%10s | %12s\n", "distance", "batch ns/ev");
    for (const int dist : {0, 4, 8, 16}) {
      const std::vector<Violation> batched =
          RunOnce(props, events, deployed, dist);
      if (!Identical(reference, batched)) {
        std::printf("SEMANTICS MISMATCH: prefetch distance %d changed the "
                    "violation stream\n",
                    dist);
        all_identical = false;
        continue;
      }
      const double ns = TimeSet(props, events, deployed, dist);
      std::printf("%10d | %12.1f\n", dist, ns);
      json.AddRow()
          .Str("stream", "keyed_arrival")
          .Num("properties", 13)
          .Num("window", static_cast<double>(deployed))
          .Num("prefetch_distance", static_cast<double>(dist))
          .Num("batch_ns_per_event", ns);
    }
  }

  const double gate_speedup = gate_best_batch_ns > 0
                                  ? gate_scalar_ns / gate_best_batch_ns
                                  : 0;
  std::printf("\nbest keyed_arrival 13-property batch speedup: %.2fx at "
              "window %zu (gate: batch <= 0.9x scalar; target: >= 1.5x)\n",
              gate_speedup, gate_best_window);
  json.AddRow()
      .Str("stream", "summary")
      .Num("best_batch_speedup_13p", gate_speedup)
      .Num("best_window", static_cast<double>(gate_best_window));
  json.Flush();

  if (!all_identical) return 1;  // differential failure is a bench failure
  if (gate_best_batch_ns > 0.9 * gate_scalar_ns) {
    std::printf("GATE FAILURE: batch %.1f ns/ev > 0.9 x scalar %.1f ns/ev\n",
                gate_best_batch_ns, gate_scalar_ns);
    return 1;
  }
  return 0;
}
