// E15 — state exhaustion as an attack surface (ROADMAP item 3).
//
// Sec 3.3 worries that "the amount of state the switch must maintain"
// bounds what a switch monitor can hold; the adversarial workload family
// (src/workload/adversarial) weaponizes that bound: floods of distinct
// stage-0 keys push a victim instance out of a capped store before its
// violating suffix arrives. This bench sweeps recall vs. memory cap vs.
// attack rate for every eviction policy over every adversarial stream and
// records the curves as BENCH_adversarial.json.
//
// SWMON_BENCH_TINY=1 runs the CI smoke gates instead of the full sweep:
//   1. pay-for-what-you-use — the unbounded default must match the oracle
//      bit-for-bit with zero evictions, and a never-binding cap must not
//      cost more than 1.5x the caps-off path (caps off must cost ~0, so
//      the bench_dispatch numbers stay honest);
//   2. mitigation — on the evasion streams with deadlines, creation-order
//      recall must be strictly below timeout-priority recall.
// Any gate failure exits 1.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "monitor/eviction.hpp"
#include "monitor/property_monitor.hpp"
#include "workload/adversarial/adversarial.hpp"

namespace swmon {
namespace {

/// ns/event of one full stream replay (events + AdvanceTime) under `cfg`.
double NsPerEvent(const AdversarialStream& stream, const MonitorConfig& cfg,
                  int reps) {
  double best = 1e18;
  for (int rep = 0; rep < reps; ++rep) {
    auto monitor = CreatePropertyMonitor(stream.property, cfg);
    const auto t0 = std::chrono::steady_clock::now();
    for (const DataplaneEvent& ev : stream.events) monitor->ProcessEvent(ev);
    monitor->AdvanceTime(stream.horizon);
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        static_cast<double>(stream.events.size());
    if (ns < best) best = ns;
  }
  return best;
}

}  // namespace
}  // namespace swmon

int main() {
  using namespace swmon;
  const bool tiny = std::getenv("SWMON_BENCH_TINY") != nullptr;
  bench::Header(
      "bench_adversarial", "E15 — adversarial state exhaustion",
      "Sec 3.3: monitor state is bounded; an adversary can aim floods at "
      "the bound so the eviction policy discards the victim before its "
      "violating suffix — policy choice decides what survives");

  const std::vector<EvictionPolicy> kPolicies = {
      EvictionPolicy::kCreationOrder, EvictionPolicy::kLru,
      EvictionPolicy::kRandom, EvictionPolicy::kTimeoutPriority};
  const std::vector<std::size_t> caps =
      tiny ? std::vector<std::size_t>{32}
           : std::vector<std::size_t>{16, 32, 64, 128};
  const std::vector<std::uint64_t> rates =
      tiny ? std::vector<std::uint64_t>{2000}
           : std::vector<std::uint64_t>{1000, 4000};

  bool failed = false;
  bench::JsonReporter json("adversarial");

  // --- gate 1: unbounded default == oracle, zero evictions ---------------
  bench::Section("pay-for-what-you-use: unbounded default vs oracle");
  std::printf("%18s | %8s | %8s | %8s | %9s\n", "stream", "oracle",
              "detected", "spurious", "evictions");
  for (const std::string& name : AdversarialStreamNames()) {
    AdversarialParams ap;
    if (tiny) ap.attackers = 64;
    const AdversarialStream stream = MakeAdversarialStream(name, ap);
    const RecallReport r = MeasureRecall(stream, MonitorConfig{});
    std::printf("%18s | %8zu | %8zu | %8zu | %9llu\n", name.c_str(),
                r.oracle_violations, r.detected, r.spurious,
                static_cast<unsigned long long>(r.evictions));
    if (r.detected != r.oracle_violations || r.spurious != 0 ||
        r.evictions != 0) {
      std::printf("[bench] FAIL: unbounded default diverged from the oracle "
                  "on %s\n",
                  name.c_str());
      failed = true;
    }
  }

  // --- gate 2: a never-binding cap must not tax the hot path -------------
  {
    AdversarialParams ap;
    if (tiny) ap.attackers = 64;
    const AdversarialStream stream =
        MakeAdversarialStream("fw_evasion", ap);
    MonitorConfig armed;
    armed.eviction = EvictionConfig{}.WithMaxInstances(1u << 30);
    const int reps = tiny ? 5 : 15;
    const double off_ns = NsPerEvent(stream, MonitorConfig{}, reps);
    const double armed_ns = NsPerEvent(stream, armed, reps);
    const double ratio = armed_ns / off_ns;
    std::printf("\ncaps off %.1f ns/event, never-binding cap %.1f ns/event "
                "(%.2fx)\n",
                off_ns, armed_ns, ratio);
    json.AddRow()
        .Str("metric", "never_binding_cap_overhead")
        .Num("caps_off_ns_per_event", off_ns)
        .Num("armed_ns_per_event", armed_ns)
        .Num("ratio", ratio);
    if (tiny && ratio > 1.5) {
      std::printf("[bench] FAIL: never-binding cap costs %.2fx (> 1.5x) — "
                  "the caps-off path must stay ~free\n",
                  ratio);
      failed = true;
    }
  }

  // --- the curves: recall vs cap vs attack rate, per policy --------------
  bench::Section("recall vs memory cap vs attack rate, per policy");
  std::printf("%18s | %9s | %16s | %5s | %8s | %8s | %9s | %7s\n", "stream",
              "pps", "policy", "cap", "oracle", "detected", "evictions",
              "recall");
  double co_recall_sum = 0, tp_recall_sum = 0;  // deadline streams, gate 3
  for (const std::string& name : AdversarialStreamNames()) {
    for (const std::uint64_t pps : rates) {
      AdversarialParams ap;
      ap.attack_pps = pps;
      if (tiny) ap.attackers = 64;
      const AdversarialStream stream = MakeAdversarialStream(name, ap);
      for (const EvictionPolicy policy : kPolicies) {
        for (const std::size_t cap : caps) {
          MonitorConfig mc;
          mc.eviction =
              EvictionConfig{}.WithPolicy(policy).WithMaxInstances(cap);
          const RecallReport r = MeasureRecall(stream, mc);
          std::printf("%18s | %9llu | %16s | %5zu | %8zu | %8zu | %9llu | "
                      "%6.1f%%\n",
                      name.c_str(), static_cast<unsigned long long>(pps),
                      EvictionPolicyName(policy), cap, r.oracle_violations,
                      r.detected,
                      static_cast<unsigned long long>(r.evictions),
                      r.Recall() * 100.0);
          json.AddRow()
              .Str("stream", name)
              .Num("attack_pps", static_cast<double>(pps))
              .Str("policy", EvictionPolicyName(policy))
              .Num("cap", static_cast<double>(cap))
              .Num("oracle_violations",
                   static_cast<double>(r.oracle_violations))
              .Num("detected", static_cast<double>(r.detected))
              .Num("spurious", static_cast<double>(r.spurious))
              .Num("evictions", static_cast<double>(r.evictions))
              .Num("recall", r.Recall());
          if (r.spurious != 0) {
            std::printf("[bench] FAIL: %zu spurious violations on %s — a "
                        "bounded run must never out-report the oracle\n",
                        r.spurious, name.c_str());
            failed = true;
          }
          // The mitigation gate compares the streams whose properties carry
          // deadlines (the others document the negative result).
          if ((name == "fw_evasion" || name == "dhcp_starvation") &&
              cap == 32 && pps == 2000) {
            if (policy == EvictionPolicy::kCreationOrder)
              co_recall_sum += r.Recall();
            if (policy == EvictionPolicy::kTimeoutPriority)
              tp_recall_sum += r.Recall();
          }
        }
      }
    }
  }

  // --- gate 3: the policy choice must matter on deadline streams ---------
  if (tiny) {
    std::printf("\nmitigation gate: creation-order recall sum %.2f vs "
                "timeout-priority %.2f (deadline streams, cap 32)\n",
                co_recall_sum, tp_recall_sum);
    if (!(co_recall_sum < tp_recall_sum)) {
      std::printf("[bench] FAIL: timeout-priority no longer beats "
                  "creation-order under evasion\n");
      failed = true;
    }
  }

  json.Flush();
  std::printf(
      "\nShape check: on deadline-carrying streams (dhcp_starvation, "
      "fw_evasion) recall collapses under creation-order/lru as the cap "
      "tightens but stays at 100%% under timeout-priority; on deadline-free "
      "streams (portknock_storm, nat_churn) no policy can tell victims from "
      "attackers — the documented negative result.\n");
  return failed ? 1 : 0;
}
