// E8 — the Sec-2 observation diagrams, reproduced as executed traces.
//
// Each walkthrough property is run against its faulted device; the first
// violation is printed with full provenance, i.e. the exact sequence of
// observations the paper's figures draw (firewall: the A->B packet then the
// dropped B->A packet; NAT: the four numbered observations; ARP: the
// learned mapping, the request, and the elapsed deadline).
#include <cstdio>

#include "bench_util.hpp"
#include "workload/arp_scenario.hpp"
#include "workload/firewall_scenario.hpp"
#include "workload/learning_scenario.hpp"
#include "workload/nat_scenario.hpp"

namespace swmon {
namespace {

void PrintFirst(const char* figure, const ScenarioOutcome& out,
                const std::string& property) {
  std::printf("\n[%s]\n", figure);
  for (const auto& v : out.monitors->AllViolations()) {
    if (v.property != property) continue;
    std::printf("%s\n", v.ToString().c_str());
    return;
  }
  std::printf("NO VIOLATION OBSERVED (unexpected)\n");
}

}  // namespace
}  // namespace swmon

int main() {
  using namespace swmon;
  bench::Header("bench_observations", "Sec 2's observation diagrams",
                "each violation is witnessed by the pictured sequence of "
                "observations, reconstructed here from full provenance");

  {
    FirewallScenarioConfig c;
    c.fault = FirewallFault::kDropEstablishedReturn;
    c.connections = 3;
    c.close_fraction = 0;
    c.stale_return_fraction = 0;
    c.options.provenance = ProvenanceLevel::kFull;
    PrintFirst("Sec 2.1: stateful firewall, A->B then B->A dropped",
               RunFirewallScenario(c), "fw-return-not-dropped-until-close");
  }
  {
    NatScenarioConfig c;
    c.fault = NatFault::kWrongReversePort;
    c.flows = 2;
    c.exchanges_per_flow = 1;
    c.options.provenance = ProvenanceLevel::kFull;
    PrintFirst("Sec 2.2: NAT, observations (1)-(4) with destination != A,P",
               RunNatScenario(c), "nat-reverse-translation");
  }
  {
    ArpScenarioConfig c;
    c.fault = ArpProxyFault::kSlowReply;
    c.hosts = 3;
    c.repeat_requests = 1;
    c.options.provenance = ProvenanceLevel::kFull;
    PrintFirst("Sec 2.3: ARP proxy, T elapses without a reply (timeout action)",
               RunArpScenario(c), "arp-proxy-reply-deadline");
  }
  {
    LearningScenarioConfig c;
    c.fault = LearningSwitchFault::kNoFlushOnLinkDown;
    c.inject_link_down = true;
    c.rounds = 12;
    c.options.seed = 3;
    c.options.provenance = ProvenanceLevel::kFull;
    PrintFirst(
        "Sec 2.4: learning switch, link-down then stale unicast (multiple "
        "match)",
        RunLearningScenario(c), "lsw-linkdown-flush");
  }
  std::printf("\n");
  return 0;
}
