// Compiled bytecode engine vs the reference interpreter (DESIGN.md §5i):
// per-event cost of the same Table-1 properties over the same streams,
// engine selected per property via MonitorConfig. The two engines are
// required to be observationally bit-identical, so every timed pair is
// also a differential check — any violation-stream mismatch fails the
// bench (exit 1), mirroring tests/compiled_engine_test.cpp.
//
// Emits BENCH_compiled.json via bench_util's JsonReporter (the `bench`
// CMake target points SWMON_BENCH_JSON_DIR at the build tree).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "monitor/property_monitor.hpp"
#include "properties/catalog.hpp"

namespace swmon {
namespace {

// Sized so the event vector (~320 B/event) stays L3-resident: the bench
// measures per-event monitor compute, and a DRAM-streaming-bound event
// walk would put both engines at the same memory floor. Each timed rep
// replays the stream kLaps times so the region is milliseconds long —
// at one lap a fast engine finishes in ~40 us and scheduler noise
// dominates the ratio. SWMON_BENCH_TINY=1 (the CI smoke step) shrinks
// everything: timings are then meaningless, but the differential check
// and the JSON plumbing still run.
const bool kTiny = std::getenv("SWMON_BENCH_TINY") != nullptr;
const std::size_t kEvents = kTiny ? 1000 : 8000;
const int kLaps = kTiny ? 1 : 50;
const int kReps = kTiny ? 1 : 3;

/// bench_dispatch's single-type stream: realistic field density, value
/// ranges small enough that stages chain and instances accumulate.
std::vector<DataplaneEvent> SingleTypeStream(DataplaneEventType type,
                                             std::size_t count,
                                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<DataplaneEvent> events;
  events.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    DataplaneEvent ev;
    ev.type = type;
    ev.time = SimTime::Zero() + Duration::Micros(static_cast<std::int64_t>(i));
    switch (type) {
      case DataplaneEventType::kArrival:
        ev.fields.Set(FieldId::kInPort, 1 + rng.NextBelow(4));
        ev.fields.Set(FieldId::kPacketId, i + 1);
        ev.fields.Set(FieldId::kIpSrc, 1000 + rng.NextBelow(64));
        ev.fields.Set(FieldId::kIpDst, 2000 + rng.NextBelow(64));
        ev.fields.Set(FieldId::kIpProto, 6);
        ev.fields.Set(FieldId::kL4SrcPort, 30000 + rng.NextBelow(512));
        ev.fields.Set(FieldId::kL4DstPort, rng.NextBool(0.5) ? 80 : 443);
        break;
      case DataplaneEventType::kEgress:
        ev.fields.Set(FieldId::kPacketId, i + 1);
        ev.fields.Set(FieldId::kIpSrc, 2000 + rng.NextBelow(64));
        ev.fields.Set(FieldId::kIpDst, 1000 + rng.NextBelow(64));
        ev.fields.Set(FieldId::kOutPort, 1 + rng.NextBelow(4));
        ev.fields.Set(FieldId::kEgressAction,
                      static_cast<std::uint64_t>(
                          rng.NextBool(0.1) ? EgressActionValue::kDrop
                                            : EgressActionValue::kForward));
        break;
      case DataplaneEventType::kLinkStatus:
        ev.fields.Set(FieldId::kLinkId, 1 + rng.NextBelow(4));
        ev.fields.Set(FieldId::kLinkUp, rng.NextBool(0.5) ? 1 : 0);
        break;
    }
    events.push_back(std::move(ev));
  }
  return events;
}

/// The fuzz-test event soup: all three types mixed, fields sprinkled at
/// random — exercises create/advance/abort/timeout paths at once.
std::vector<DataplaneEvent> FuzzStream(std::uint64_t seed, std::size_t count) {
  Rng rng(seed);
  std::vector<DataplaneEvent> events;
  events.reserve(count);
  SimTime t = SimTime::Zero();
  for (std::size_t i = 0; i < count; ++i) {
    DataplaneEvent ev;
    t = t + Duration::Millis(1 + static_cast<std::int64_t>(rng.NextBelow(50)));
    ev.time = t;
    const auto roll = rng.NextBelow(10);
    ev.type = roll < 4   ? DataplaneEventType::kArrival
              : roll < 8 ? DataplaneEventType::kEgress
                         : DataplaneEventType::kLinkStatus;
    for (std::size_t f = 0; f < kNumFieldIds; ++f) {
      if (rng.NextBool(0.35))
        ev.fields.Set(static_cast<FieldId>(f), rng.NextBelow(8));
    }
    events.push_back(std::move(ev));
  }
  return events;
}

std::vector<Property> Table1Properties(std::size_t count) {
  std::vector<Property> props;
  for (const CatalogEntry& e : BuildCatalog()) {
    if (!e.in_table1) continue;
    props.push_back(e.property);
    if (props.size() == count) break;
  }
  return props;
}

double BestNsPerEvent(const std::function<void()>& run, std::size_t events) {
  double best = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    run();
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        static_cast<double>(events);
    if (rep == 0 || ns < best) best = ns;
  }
  return best;
}

struct EngineRun {
  double ns_per_event = 0;
  std::vector<Violation> violations;
};

EngineRun RunWith(EngineKind kind, const std::vector<Property>& props,
                  const std::vector<DataplaneEvent>& events) {
  MonitorConfig config;
  config.engine = kind;
  // Timed path calls the engines directly — this measures engine cost, not
  // engine + dispatch-layer constant (bench_dispatch owns that number).
  EngineRun out;
  out.ns_per_event = BestNsPerEvent(
      [&] {
        std::vector<std::unique_ptr<PropertyMonitor>> engines;
        for (const Property& p : props)
          engines.push_back(CreatePropertyMonitor(p, config));
        // Replay laps measure the steady state: lap 1 populates the
        // instance tables, later laps hit them. Identical for both
        // engines, so the ratio is undistorted.
        for (int lap = 0; lap < kLaps; ++lap)
          for (const DataplaneEvent& ev : events)
            for (auto& e : engines) e->ProcessEvent(ev);
      },
      events.size() * static_cast<std::size_t>(kLaps));
  // Instrumented pass for the differential check, with a final time advance
  // so pending timeout-action windows fire on both engines.
  std::vector<std::unique_ptr<PropertyMonitor>> engines;
  for (const Property& p : props)
    engines.push_back(CreatePropertyMonitor(p, config));
  for (const DataplaneEvent& ev : events)
    for (auto& e : engines) e->ProcessEvent(ev);
  for (auto& e : engines)
    e->AdvanceTime(events.back().time + Duration::Seconds(300));
  for (auto& e : engines) {
    const auto& v = e->violations();
    out.violations.insert(out.violations.end(), v.begin(), v.end());
  }
  return out;
}

bool Identical(const std::vector<Violation>& a,
               const std::vector<Violation>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].property != b[i].property || a[i].time != b[i].time ||
        a[i].instance_id != b[i].instance_id ||
        a[i].trigger_stage != b[i].trigger_stage ||
        a[i].bindings != b[i].bindings)
      return false;
  }
  return true;
}

}  // namespace
}  // namespace swmon

int main() {
  using namespace swmon;
  bench::Header(
      "bench_compiled", "DESIGN.md §5i (bytecode engine)",
      "ahead-of-time lowering to flat bytecode + packed state records "
      "cuts per-event cost vs the tree-walking interpreter, with "
      "bit-identical violation streams");

  bench::JsonReporter json("compiled");

  const struct {
    const char* name;
    std::vector<DataplaneEvent> events;
  } streams[] = {
      {"arrival", SingleTypeStream(DataplaneEventType::kArrival, kEvents, 42)},
      {"egress", SingleTypeStream(DataplaneEventType::kEgress, kEvents, 42)},
      {"fuzz_soup", FuzzStream(99, kEvents)},
  };

  double single_property_speedup = 0;
  bool all_identical = true;

  for (const std::size_t nprops : {1u, 4u, 13u}) {
    const std::vector<Property> props = Table1Properties(nprops);
    bench::Section(
        ("per-event cost, " + std::to_string(props.size()) + " properties")
            .c_str());
    std::printf("%12s | %16s | %14s | %8s | %10s\n", "stream",
                "interpreted ns/ev", "compiled ns/ev", "speedup",
                "violations");
    for (const auto& s : streams) {
      const EngineRun interp =
          RunWith(EngineKind::kInterpreted, props, s.events);
      const EngineRun comp = RunWith(EngineKind::kCompiled, props, s.events);
      if (!Identical(interp.violations, comp.violations)) {
        std::printf("SEMANTICS MISMATCH on %s with %zu properties: "
                    "interpreted=%zu compiled=%zu violations\n",
                    s.name, props.size(), interp.violations.size(),
                    comp.violations.size());
        all_identical = false;
        continue;
      }
      const double speedup = comp.ns_per_event > 0
                                 ? interp.ns_per_event / comp.ns_per_event
                                 : 0;
      if (nprops == 1 && std::string(s.name) == "arrival")
        single_property_speedup = speedup;
      std::printf("%12s | %17.1f | %14.1f | %7.2fx | %10zu\n", s.name,
                  interp.ns_per_event, comp.ns_per_event, speedup,
                  comp.violations.size());
      json.AddRow()
          .Str("stream", s.name)
          .Num("properties", static_cast<double>(props.size()))
          .Num("interpreted_ns_per_event", interp.ns_per_event)
          .Num("compiled_ns_per_event", comp.ns_per_event)
          .Num("speedup", speedup)
          .Num("violations", static_cast<double>(comp.violations.size()));
    }
  }

  std::printf("\nsingle-property arrival speedup: %.2fx (target: >= 5x)\n",
              single_property_speedup);
  json.AddRow()
      .Str("stream", "summary")
      .Num("single_property_speedup", single_property_speedup);
  json.Flush();

  if (!all_identical) return 1;  // differential failure is a bench failure
  return 0;
}
