// Small shared helpers for the experiment harnesses.
//
// Each bench binary regenerates one of the paper's artifacts (Table 1,
// Table 2, or a Sec-3.3 claim) and prints it; EXPERIMENTS.md records the
// outputs next to the paper's claims.
#pragma once

#include <cstdio>
#include <string>

namespace swmon::bench {

inline void Header(const char* experiment, const char* paper_artifact,
                   const char* claim) {
  std::printf("\n================================================================================\n");
  std::printf("%s — reproduces %s\n", experiment, paper_artifact);
  std::printf("paper claim: %s\n", claim);
  std::printf("================================================================================\n");
}

inline void Section(const char* title) {
  std::printf("\n--- %s ---\n", title);
}

inline std::string Pad(std::string s, std::size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

}  // namespace swmon::bench
