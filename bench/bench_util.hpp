// Small shared helpers for the experiment harnesses.
//
// Each bench binary regenerates one of the paper's artifacts (Table 1,
// Table 2, or a Sec-3.3 claim) and prints it. Benches with scalar results
// additionally record them through JsonReporter so the bench trajectory
// (BENCH_<name>.json) is machine-readable and reproducible: the `bench`
// CMake target runs them with SWMON_BENCH_JSON_DIR pointed at the build
// tree. EXPERIMENTS.md records the outputs next to the paper's claims.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace swmon::bench {

inline void Header(const char* experiment, const char* paper_artifact,
                   const char* claim) {
  std::printf("\n================================================================================\n");
  std::printf("%s — reproduces %s\n", experiment, paper_artifact);
  std::printf("paper claim: %s\n", claim);
  std::printf("================================================================================\n");
}

inline void Section(const char* title) {
  std::printf("\n--- %s ---\n", title);
}

inline std::string Pad(std::string s, std::size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

/// Collects rows of {key: string|number} results and writes them as
/// BENCH_<name>.json — one JSON object with a "results" array — either into
/// $SWMON_BENCH_JSON_DIR (set by the `bench` CMake target) or the current
/// directory. Keys are emitted in insertion order; numbers use %.6g so
/// output is stable across runs of identical measurements.
class JsonReporter {
 public:
  explicit JsonReporter(std::string bench_name)
      : name_(std::move(bench_name)) {}

  class Row {
   public:
    Row& Num(const std::string& key, double value) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", value);
      fields_.emplace_back(key, buf);
      numeric_.push_back(true);
      return *this;
    }
    Row& Str(const std::string& key, const std::string& value) {
      fields_.emplace_back(key, value);
      numeric_.push_back(false);
      return *this;
    }

   private:
    friend class JsonReporter;
    std::vector<std::pair<std::string, std::string>> fields_;
    std::vector<bool> numeric_;
  };

  Row& AddRow() { return rows_.emplace_back(); }

  /// Target path: $SWMON_BENCH_JSON_DIR/BENCH_<name>.json when the env var
  /// is set, else ./BENCH_<name>.json.
  std::string DefaultPath() const {
    const char* dir = std::getenv("SWMON_BENCH_JSON_DIR");
    const std::string base = "BENCH_" + name_ + ".json";
    return dir && *dir ? std::string(dir) + "/" + base : base;
  }

  std::string ToJson() const {
    std::string out = "{\"bench\": " + Quote(name_) + ", \"results\": [";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      out += r ? ",\n  {" : "\n  {";
      const Row& row = rows_[r];
      for (std::size_t i = 0; i < row.fields_.size(); ++i) {
        if (i) out += ", ";
        out += Quote(row.fields_[i].first) + ": ";
        out += row.numeric_[i] ? row.fields_[i].second
                               : Quote(row.fields_[i].second);
      }
      out += "}";
    }
    out += "\n]}\n";
    return out;
  }

  /// Writes the JSON file and prints where it went. Returns false (after
  /// printing a warning) when the path is unwritable.
  bool Flush() const {
    const std::string path = DefaultPath();
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (!f) {
      std::printf("[bench] cannot write %s\n", path.c_str());
      return false;
    }
    const std::string json = ToJson();
    const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    std::fclose(f);
    std::printf("[bench] wrote %s (%zu rows)\n", path.c_str(), rows_.size());
    return ok;
  }

 private:
  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    return out;
  }

  std::string name_;
  std::vector<Row> rows_;
};

}  // namespace swmon::bench
