// E4 — Sec 3.3: "even 'static' Varanus remains intractable so long as it
// stores and updates its state using OpenFlow rules, which cannot be
// modified at line rate. A scalable implementation would need more rapid
// state mechanisms, such as the register-based approach in P4."
//
// Two views:
//   1. the MODELED sustained update rates of each mechanism (the cost
//      parameters the simulator charges), and
//   2. REAL wall-clock microbenchmarks of the mechanism implementations
//      (google-benchmark) — how many updates/sec our state table, register
//      array, flow table, and slow-path queue actually sustain.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "dataplane/flow_mod_queue.hpp"
#include "dataplane/flow_table.hpp"
#include "dataplane/register_array.hpp"
#include "dataplane/state_table.hpp"

namespace swmon {
namespace {

void PrintModeledRates() {
  const CostParams p;
  std::printf("\n=== bench_state_update — reproduces Sec 3.3 (state update rates) ===\n");
  std::printf("modeled mechanism costs (per update / sustained rate):\n");
  std::printf("  %-34s %8lld ns  -> %12.0f updates/s\n", "P4 register write",
              static_cast<long long>(p.register_op.nanos()),
              1e9 / p.register_op.nanos());
  std::printf("  %-34s %8lld ns  -> %12.0f updates/s\n",
              "OpenState table transition",
              static_cast<long long>(p.state_table_op.nanos()),
              1e9 / p.state_table_op.nanos());
  std::printf("  %-34s %8lld ns  -> %12lld updates/s (rate-limited)\n",
              "OpenFlow flow-mod (slow path)",
              static_cast<long long>(p.flow_mod.nanos()),
              static_cast<long long>(p.flow_mods_per_sec));
  std::printf("  %-34s %8lld ns  -> %12.0f round-trips/s\n",
              "controller round trip",
              static_cast<long long>(p.controller_rtt.nanos()),
              1e9 / p.controller_rtt.nanos());
  std::printf(
      "ratio register : flow-mod = %.0fx — per-packet monitor state updates "
      "are only feasible on the fast path.\n",
      (1e9 / p.register_op.nanos()) / p.flow_mods_per_sec);
}

FieldMap FlowFields(std::uint64_t i) {
  FieldMap f;
  f.Set(FieldId::kIpSrc, i);
  f.Set(FieldId::kIpDst, i ^ 0x5aa5);
  return f;
}

void BM_RegisterArrayWrite(benchmark::State& state) {
  RegisterArray regs(1 << 16);
  std::uint64_t i = 0;
  for (auto _ : state) {
    regs.WriteKey(FlowKey{{i, i ^ 7}}, i);
    benchmark::DoNotOptimize(regs);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegisterArrayWrite);

void BM_RegisterArrayReadKey(benchmark::State& state) {
  RegisterArray regs(1 << 16);
  for (std::uint64_t i = 0; i < 1000; ++i) regs.WriteKey(FlowKey{{i}}, i);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(regs.ReadKey(FlowKey{{i++ % 1000}}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegisterArrayReadKey);

void BM_StateTableUpdate(benchmark::State& state) {
  StateTable table({FieldId::kIpSrc, FieldId::kIpDst},
                   {FieldId::kIpSrc, FieldId::kIpDst});
  std::uint64_t i = 0;
  for (auto _ : state) {
    table.Update(FlowFields(i % 4096), i, SimTime::FromNanos(static_cast<std::int64_t>(i)));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StateTableUpdate);

void BM_StateTableLookup(benchmark::State& state) {
  StateTable table({FieldId::kIpSrc, FieldId::kIpDst},
                   {FieldId::kIpSrc, FieldId::kIpDst});
  for (std::uint64_t i = 0; i < 4096; ++i)
    table.Update(FlowFields(i), i, SimTime::Zero());
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.Lookup(FlowFields(i++ % 4096), SimTime::Zero()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StateTableLookup);

void BM_FlowTableInstallRemove(benchmark::State& state) {
  FlowTable table;
  std::uint64_t i = 0;
  for (auto _ : state) {
    FlowEntry e;
    e.priority = static_cast<std::uint32_t>(i % 8);
    e.match.Add(FieldMatch::Exact(FieldId::kIpSrc, i));
    const auto h = table.Add(e, SimTime::FromNanos(static_cast<std::int64_t>(i)));
    table.Remove(h);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlowTableInstallRemove);

void BM_FlowTableLookup(benchmark::State& state) {
  FlowTable table;
  const std::size_t entries = static_cast<std::size_t>(state.range(0));
  for (std::uint64_t i = 0; i < entries; ++i) {
    FlowEntry e;
    e.match.Add(FieldMatch::Exact(FieldId::kIpSrc, i));
    table.Add(e, SimTime::Zero());
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Lookup(FlowFields(i++ % entries), SimTime::Zero()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlowTableLookup)->Arg(16)->Arg(256)->Arg(4096);

void BM_FlowModQueueSubmitApply(benchmark::State& state) {
  CostParams params;
  FlowModQueue queue(params);
  std::int64_t t = 0;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    queue.Submit(SimTime::FromNanos(t), [&](SimTime) { ++sink; });
    t += 1000000;  // 1ms apart: queue drains fully
    queue.Advance(SimTime::FromNanos(t));
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlowModQueueSubmitApply);

}  // namespace
}  // namespace swmon

int main(int argc, char** argv) {
  swmon::PrintModeledRates();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
