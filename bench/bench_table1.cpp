// E1 — regenerates Table 1: the property catalog with its required
// semantic features, and live confirmation that every property detects its
// targeted fault (and stays quiet on the correct device).
//
// For each row we print the paper's published feature columns and the row
// COMPUTED from the property spec by AnalyzeFeatures; documented
// interpretation divergences (mostly the Obligation column — see
// EXPERIMENTS.md E1) are marked with '!'.
#include <cstdio>
#include <functional>

#include "bench_util.hpp"
#include "monitor/features.hpp"
#include "properties/catalog.hpp"
#include "workload/property_scenarios.hpp"

namespace swmon {
namespace {

struct Detection {
  std::size_t clean = 0;   // violations on the correct device (want 0)
  std::size_t faulty = 0;  // violations with the targeted fault (want > 0)
};

/// Runs the scenario pair (correct, faulted) that exercises `property`.
Detection Detect(const std::string& property) {
  Detection d;
  d.clean = RunScenarioForProperty(property, /*faulted=*/false)
                .ViolationsOf(property);
  d.faulty = RunScenarioForProperty(property, /*faulted=*/true)
                 .ViolationsOf(property);
  return d;
}

}  // namespace
}  // namespace swmon

int main() {
  using namespace swmon;
  bench::Header("bench_table1", "Table 1 (and the Sec 1/2 walkthroughs)",
                "each property requires the listed semantic features; a "
                "monitor with those features detects the corresponding "
                "misbehaviour and stays quiet otherwise");

  const auto catalog = BuildCatalog();

  bench::Section("feature rows (paper's row, then computed-from-spec row)");
  std::printf("%s %s | Fields| Hist | T.out| Oblig| Ident| Neg  | T.Acts| Multi| Inst. ID\n",
              bench::Pad("id", 6).c_str(), bench::Pad("property", 28).c_str());
  for (const auto& e : catalog) {
    const FeatureSet computed = AnalyzeFeatures(e.property);
    const auto diff = DiffFeatureColumns(computed, e.expected);
    std::printf("%s %s | %s%s\n", bench::Pad(e.id, 6).c_str(),
                bench::Pad(e.property.name, 28).c_str(),
                e.expected.ToRow().c_str(), e.in_table1 ? "  (paper)" : "");
    if (!diff.empty()) {
      std::printf("%s %s | %s  (computed%s)\n", bench::Pad("", 6).c_str(),
                  bench::Pad("", 28).c_str(), computed.ToRow().c_str(),
                  diff.empty() ? "" : " !");
    }
  }
  std::printf("\n'!' rows differ from the paper on documented columns; see "
              "EXPERIMENTS.md E1 for the per-row rationale.\n");

  bench::Section("detection confirmation (violations: correct device / faulted device)");
  std::printf("%s %s | clean | faulty\n", bench::Pad("id", 6).c_str(),
              bench::Pad("property", 28).c_str());
  bool all_ok = true;
  for (const auto& e : catalog) {
    const Detection d = Detect(e.property.name);
    const bool ok = d.clean == 0 && d.faulty > 0;
    all_ok &= ok;
    std::printf("%s %s | %5zu | %5zu  %s\n", bench::Pad(e.id, 6).c_str(),
                bench::Pad(e.property.name, 28).c_str(), d.clean, d.faulty,
                ok ? "" : "<-- UNEXPECTED");
  }
  std::printf("\n%s\n", all_ok
                            ? "All 21 properties: quiet when correct, "
                              "detecting when faulted."
                            : "SOME PROPERTIES DID NOT BEHAVE AS EXPECTED");
  return all_ok ? 0 : 1;
}
