// E7 — Feature 10 / Sec 3.2 (provenance):
// "recording each packet that advances an observation is not feasible ...
// limited provenance could be recovered without added cost: since some
// header information is retained for matching purposes, those values could
// be conveyed along with the final event."
//
// Run the NAT workload at the three provenance levels and report monitor
// state size, replay throughput (wall clock), and what a violation report
// carries.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "monitor/engine.hpp"
#include "properties/catalog.hpp"
#include "workload/scenario_registry.hpp"

int main() {
  using namespace swmon;
  bench::Header(
      "bench_provenance", "Feature 10 / Sec 3.2 (provenance)",
      "full provenance costs memory and throughput; limited provenance (the "
      "bound header values) is nearly free and still names the culprit");

  // One recorded trace, replayed into engines at each level. The registry
  // resolves "nat" to the faulted NAT scenario; scale=10 gives ~200 flows.
  ScenarioOptions opts;
  opts.keep_trace = true;
  opts.scale = 10;
  const auto out = RunScenarioByName("nat", /*faulted=*/true, opts);
  const auto& trace = *out.trace;

  std::printf("\ntrace: %zu events, %zu violations expected\n", trace.size(),
              out.TotalViolations());
  std::printf("\n%10s | %10s | %12s | %12s | %10s | %s\n", "level",
              "violations", "state bytes", "events/s", "bind/viol",
              "history/viol");
  for (const auto level : {ProvenanceLevel::kNone, ProvenanceLevel::kLimited,
                           ProvenanceLevel::kFull}) {
    MonitorConfig mc;
    mc.provenance = level;

    // Wall-clock throughput over fresh engines.
    const int kReps = 20;
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t violations = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      MonitorEngine engine(NatReverseTranslation(), mc);
      trace.ReplayInto(engine);
      violations = engine.violations().size();
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(t1 - t0).count() / kReps;

    // Peak resident monitor state during one replay (instances come and
    // go as violations consume them; sample along the way).
    MonitorEngine engine(NatReverseTranslation(), mc);
    std::size_t peak_bytes = 0;
    for (const auto& ev : trace.events()) {
      engine.ProcessEvent(ev);
      peak_bytes = std::max(peak_bytes, engine.StateBytes());
    }

    double binds = 0, hist = 0;
    for (const auto& v : engine.violations()) {
      binds += static_cast<double>(v.bindings.size());
      hist += static_cast<double>(v.history.size());
    }
    const double n = std::max<double>(
        1.0, static_cast<double>(engine.violations().size()));
    std::printf("%10s | %10zu | %12zu | %12.0f | %10.1f | %10.1f\n",
                ProvenanceLevelName(level), violations, peak_bytes,
                static_cast<double>(trace.size()) / secs, binds / n,
                hist / n);
  }
  std::printf(
      "\nShape check: kLimited matches kNone's state size and throughput to "
      "within noise while carrying the bound values; kFull multiplies state "
      "by the per-instance event history and costs throughput.\n");
  return 0;
}
