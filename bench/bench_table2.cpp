// E2 — regenerates Table 2: the comparison of approaches to on-switch
// state, plus its executable verification — which catalog properties each
// approach's mechanism actually compiles, with the blocking reasons.
#include <cstdio>
#include <map>

#include "backends/backend.hpp"
#include "bench_util.hpp"
#include "properties/catalog.hpp"

int main() {
  using namespace swmon;
  bench::Header(
      "bench_table2", "Table 2",
      "existing approaches provide per-flow state but miss monitoring "
      "requirements: timeout actions (Varanus only), multiple match / "
      "out-of-band events (not static Varanus, not the rest), wandering "
      "match (Varanus; target-dependent on P4/POF/SNAP), full provenance "
      "(nobody)");

  const auto backends = AllBackends();
  const auto catalog = BuildCatalog();

  bench::Section("capability matrix (rows as in the paper)");
  auto row = [&](const char* label, auto cell) {
    std::printf("%s", bench::Pad(label, 34).c_str());
    for (const auto& b : backends)
      std::printf("| %s ", bench::Pad(cell(b->info()), 13).c_str());
    std::printf("\n");
  };
  std::printf("%s", bench::Pad("Semantic Challenge", 34).c_str());
  for (const auto& b : backends)
    std::printf("| %s ", bench::Pad(b->info().name, 13).c_str());
  std::printf("\n");
  auto tri = [](Tri t) {
    return std::string(t == Tri::kYes ? "Y" : t == Tri::kNo ? "X" : "");
  };
  row("State mechanism", [](const BackendInfo& i) { return i.state_mechanism; });
  row("Update datapath", [](const BackendInfo& i) { return i.update_datapath; });
  row("Processing Mode", [](const BackendInfo& i) { return i.processing_mode; });
  row("Event History", [&](const BackendInfo& i) { return tri(i.event_history); });
  row("Identification of related events",
      [&](const BackendInfo& i) { return tri(i.related_events); });
  row("Field access", [](const BackendInfo& i) { return i.field_access; });
  row("Negative match", [&](const BackendInfo& i) { return tri(i.negative_match); });
  row("Rule timeouts", [&](const BackendInfo& i) { return tri(i.rule_timeouts); });
  row("Timeout actions", [&](const BackendInfo& i) { return tri(i.timeout_actions); });
  row("Symmetric match", [&](const BackendInfo& i) { return tri(i.symmetric_match); });
  row("Wandering match", [&](const BackendInfo& i) { return tri(i.wandering_match); });
  row("Out-of-band events", [&](const BackendInfo& i) { return tri(i.out_of_band); });
  row("Full provenance", [&](const BackendInfo& i) { return tri(i.full_provenance); });
  std::printf("\nY = provides the feature, X = architecture precludes it, "
              "blank = not applicable / target dependent (paper legend).\n");

  bench::Section("verification: compiling all 21 catalog properties per backend");
  std::printf("%s", bench::Pad("property", 30).c_str());
  for (const auto& b : backends)
    std::printf("| %s", bench::Pad(b->info().name, 10).c_str());
  std::printf("\n");
  std::map<std::string, int> totals;
  for (const auto& e : catalog) {
    std::printf("%s", bench::Pad(e.property.name, 30).c_str());
    for (const auto& b : backends) {
      const auto r = b->Compile(e.property, CostParams{});
      totals[b->info().name] += r.ok();
      std::printf("| %s", bench::Pad(r.ok() ? "ok" : "-", 10).c_str());
    }
    std::printf("\n");
  }
  std::printf("%s", bench::Pad("TOTAL compiled (of 21)", 30).c_str());
  for (const auto& b : backends)
    std::printf("| %-10d", totals[b->info().name]);
  std::printf("\n");

  bench::Section("example blocking diagnoses");
  const struct {
    const char* backend;
    const char* property;
  } samples[] = {
      {"OpenState", "dhcparp-cache-preload"},
      {"OpenState", "nat-reverse-translation"},
      {"FAST", "fw-return-not-dropped-timeout"},
      {"POF / P4", "arp-proxy-reply-deadline"},
      {"POF / P4", "lsw-linkdown-flush"},
      {"Static Varanus", "lsw-linkdown-flush"},
      {"OpenFlow 1.3", "fw-return-not-dropped"},
  };
  for (const auto& s : samples) {
    for (const auto& b : backends) {
      if (b->info().name != s.backend) continue;
      for (const auto& e : catalog) {
        if (e.property.name != std::string(s.property)) continue;
        const auto r = b->Compile(e.property, CostParams{});
        if (!r.ok()) {
          std::printf("%s / %s:\n", s.backend, s.property);
          for (const auto& reason : r.unsupported)
            std::printf("    - %s\n", reason.c_str());
        }
      }
    }
  }
  return 0;
}
