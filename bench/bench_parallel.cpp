// Parallel — sharded worker-pool monitor execution (DESIGN.md "Parallel
// execution"): aggregate events/sec with all 13 Table-1 engines attached,
// serial MonitorSet versus ParallelMonitorSet sweeping workers x batch size
// x properties, plus calibrated (cost-balanced) versus uniform sharding.
// Sec 3.3 wants per-packet cost constant as properties grow; PR 2's filter
// cut wasted deliveries, this path adds the other axis — spreading the
// remaining real work across cores the way a hardware pipeline spreads
// stages. Violation counts are cross-checked against serial on every
// configuration (exit 1 on mismatch).
//
// Also sweeps the single-hot-property case (the paper's million-user
// monitor): ONE shard-eligible keyed property with >=100k concurrent
// instances, serial versus ShardMode::kInstance at 1..8 workers — the
// configuration property-level sharding cannot speed up at all.
//
// Emits BENCH_parallel.json via bench_util's JsonReporter. Knobs (env):
//   SWMON_BENCH_JSON_DIR           where the JSON lands (bench target sets it)
//   SWMON_BENCH_PARALLEL_EVENTS    stream length (default 30000)
//   SWMON_BENCH_PARALLEL_WORKERS   max workers swept (default 8)
//   SWMON_BENCH_TINY               CI smoke: shrink streams AND enforce the
//                                  batching-overhead gate (1 worker must stay
//                                  within 1.3x of serial; exit 1 past it)
// Speedup is bounded by available cores — on a 1-core container the sweep
// degenerates to ~1x and mainly measures batching overhead (which is
// exactly what the CI gate pins).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/threading.hpp"
#include "monitor/monitor_set.hpp"
#include "monitor/parallel_monitor_set.hpp"
#include "monitor/property_builder.hpp"
#include "monitor/shard_plan.hpp"
#include "properties/catalog.hpp"

namespace swmon {
namespace {

const bool kTiny = std::getenv("SWMON_BENCH_TINY") != nullptr;
// Best-of damping matters more when the gate runs on tiny noisy streams.
const int kReps = kTiny ? 5 : 3;

std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  const long parsed = std::atol(v);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/// A mixed-scenario stream: interleaved TCP flows with matching egress,
/// ARP request/reply chatter, DHCP handshakes, FTP control traffic, and
/// link flaps — every Table-1 property family sees events it can react to,
/// so engine costs are heterogeneous (which is what makes cost-balanced
/// sharding matter).
std::vector<DataplaneEvent> MixedScenarioStream(std::size_t count,
                                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<DataplaneEvent> events;
  events.reserve(count);
  // Recently seen TCP flows; some egress events drop their return traffic
  // (a firewall violation), and the 100us clock lets ARP/DHCP reply
  // deadlines lapse mid-stream — the parity check needs real violations.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> flows;
  for (std::size_t i = 0; i < count; ++i) {
    DataplaneEvent ev;
    ev.time = SimTime::Zero() + Duration::Micros(static_cast<std::int64_t>(
                                    100 * (i + 1)));
    const auto roll = rng.NextBelow(100);
    if (roll < 40) {  // TCP arrival
      ev.type = DataplaneEventType::kArrival;
      ev.fields.Set(FieldId::kInPort, 1 + rng.NextBelow(4));
      ev.fields.Set(FieldId::kPacketId, i + 1);
      const std::uint64_t src = 1000 + rng.NextBelow(48);
      const std::uint64_t dst = 2000 + rng.NextBelow(48);
      ev.fields.Set(FieldId::kIpSrc, src);
      ev.fields.Set(FieldId::kIpDst, dst);
      ev.fields.Set(FieldId::kIpProto, 6);
      ev.fields.Set(FieldId::kL4SrcPort, 30000 + rng.NextBelow(256));
      ev.fields.Set(FieldId::kL4DstPort, rng.NextBool(0.5) ? 80 : 443);
      ev.fields.Set(FieldId::kEthSrc, 0xa0 + rng.NextBelow(16));
      if (flows.size() < 64) flows.emplace_back(src, dst);
    } else if (roll < 55) {  // egress (some of it return traffic / drops)
      ev.type = DataplaneEventType::kEgress;
      ev.fields.Set(FieldId::kPacketId, i + 1);
      if (!flows.empty() && rng.NextBool(0.3)) {
        // Return traffic for an established flow, occasionally dropped.
        const auto& [src, dst] = flows[rng.NextBelow(flows.size())];
        ev.fields.Set(FieldId::kIpSrc, dst);
        ev.fields.Set(FieldId::kIpDst, src);
      } else {
        ev.fields.Set(FieldId::kIpSrc, 2000 + rng.NextBelow(48));
        ev.fields.Set(FieldId::kIpDst, 1000 + rng.NextBelow(48));
      }
      ev.fields.Set(FieldId::kOutPort, 1 + rng.NextBelow(4));
      ev.fields.Set(FieldId::kEgressAction,
                    static_cast<std::uint64_t>(
                        rng.NextBool(0.1) ? EgressActionValue::kDrop
                                          : EgressActionValue::kForward));
    } else if (roll < 70) {  // ARP
      ev.type = DataplaneEventType::kArrival;
      ev.fields.Set(FieldId::kInPort, 1 + rng.NextBelow(4));
      ev.fields.Set(FieldId::kArpOp, rng.NextBool(0.5) ? 1 : 2);
      ev.fields.Set(FieldId::kArpSenderIp, 10 + rng.NextBelow(24));
      ev.fields.Set(FieldId::kArpTargetIp, 10 + rng.NextBelow(24));
      ev.fields.Set(FieldId::kArpSenderMac, 0xb0 + rng.NextBelow(24));
    } else if (roll < 85) {  // DHCP
      ev.type = DataplaneEventType::kArrival;
      ev.fields.Set(FieldId::kInPort, 1 + rng.NextBelow(4));
      ev.fields.Set(FieldId::kDhcpMsgType, 1 + rng.NextBelow(5));
      ev.fields.Set(FieldId::kDhcpChaddr, 0xc0 + rng.NextBelow(16));
      ev.fields.Set(FieldId::kDhcpXid, 1 + rng.NextBelow(64));
      ev.fields.Set(FieldId::kDhcpYiaddr, 300 + rng.NextBelow(16));
    } else if (roll < 95) {  // FTP control
      ev.type = DataplaneEventType::kArrival;
      ev.fields.Set(FieldId::kInPort, 1 + rng.NextBelow(4));
      ev.fields.Set(FieldId::kIpSrc, 1000 + rng.NextBelow(48));
      ev.fields.Set(FieldId::kIpDst, 2000 + rng.NextBelow(48));
      ev.fields.Set(FieldId::kL4DstPort, 21);
      ev.fields.Set(FieldId::kFtpMsgKind, rng.NextBelow(3));
      ev.fields.Set(FieldId::kFtpDataAddr, 1000 + rng.NextBelow(48));
      ev.fields.Set(FieldId::kFtpDataPort, 5000 + rng.NextBelow(64));
    } else {  // link flap
      ev.type = DataplaneEventType::kLinkStatus;
      ev.fields.Set(FieldId::kLinkId, 1 + rng.NextBelow(4));
      ev.fields.Set(FieldId::kLinkUp, rng.NextBool(0.5) ? 1 : 0);
    }
    events.push_back(std::move(ev));
  }
  return events;
}

std::vector<Property> Table1Properties(std::size_t count) {
  std::vector<Property> props;
  for (const CatalogEntry& e : BuildCatalog()) {
    if (!e.in_table1) continue;
    props.push_back(e.property);
    if (props.size() == count) break;
  }
  return props;
}

double BestSeconds(const std::function<void()>& run) {
  double best = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    run();
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (rep == 0 || s < best) best = s;
  }
  return best;
}

std::size_t RunSerialOnce(const std::vector<Property>& props,
                          const std::vector<DataplaneEvent>& events) {
  MonitorSet set;
  for (const Property& p : props) set.Add(p);
  for (const DataplaneEvent& ev : events) set.OnDataplaneEvent(ev);
  // Summed across engines via the snapshot wildcard query.
  return set.TelemetrySnapshot().counter("monitor.engine.*.violations");
}

std::size_t RunParallelOnce(const std::vector<Property>& props,
                            const std::vector<DataplaneEvent>& events,
                            std::size_t workers, std::size_t batch,
                            const std::vector<double>* weights,
                            ShardMode mode = ShardMode::kProperty) {
  ParallelConfig cfg;
  cfg.workers = workers;
  cfg.batch_capacity = batch;
  cfg.shard_mode = mode;
  ParallelMonitorSet set(cfg);
  for (std::size_t i = 0; i < props.size(); ++i)
    set.Add(props[i], {}, weights ? (*weights)[i] : 1.0);
  set.Start();
  for (const DataplaneEvent& ev : events) set.OnDataplaneEvent(ev);
  set.Stop();
  return set.TelemetrySnapshot().counter("monitor.engine.*.violations");
}

/// The hot property: arrival binds a (src, dst) pair; a later drop of the
/// reversed pair violates. Shard-eligible (both vars are stage-0 field
/// bindings that stage 1 pins with indexable equalities), so kInstance can
/// split its instance population across every worker.
Property HotPairProperty() {
  PropertyBuilder b("hot-pairs", "single hot property, many instances");
  const VarId A = b.Var("A"), B = b.Var("B");
  b.AddStage("outbound")
      .Match(PatternBuilder::Arrival().Build())
      .Bind(A, FieldId::kIpSrc)
      .Bind(B, FieldId::kIpDst)
      .Window(Duration::Seconds(3600))
      .RefreshOnRematch();
  b.AddStage("return dropped")
      .Match(PatternBuilder::Egress()
                 .EqVar(FieldId::kIpSrc, B)
                 .EqVar(FieldId::kIpDst, A)
                 .Dropped()
                 .Build());
  return std::move(b).Build();
}

/// Mostly-unique arrivals (each a fresh instance, all inside one long
/// window) plus drop egresses over the same pair space. With a key space
/// sized to the stream, the live population grows to >=100k concurrent
/// instances — the regime where one property saturates one core.
std::vector<DataplaneEvent> HotPairStream(std::size_t count,
                                          std::uint64_t keys,
                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<DataplaneEvent> events;
  events.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    DataplaneEvent ev;
    ev.time = SimTime::Zero() +
              Duration::Micros(static_cast<std::int64_t>(10 * (i + 1)));
    ev.fields.Set(FieldId::kIpSrc, rng.NextBelow(keys));
    ev.fields.Set(FieldId::kIpDst, rng.NextBelow(keys));
    if (rng.NextBool(0.8)) {
      ev.type = DataplaneEventType::kArrival;
    } else {
      ev.type = DataplaneEventType::kEgress;
      ev.fields.Set(FieldId::kEgressAction,
                    static_cast<std::uint64_t>(EgressActionValue::kDrop));
    }
    events.push_back(std::move(ev));
  }
  return events;
}

}  // namespace
}  // namespace swmon

int main() {
  using namespace swmon;
  bench::Header(
      "bench_parallel", "Sec 3.3 (aggregate monitor throughput)",
      "engine state is independent across properties, so sharding engines "
      "over a worker pool scales aggregate events/sec with cores while the "
      "violation output stays bit-identical to serial execution");

  const std::size_t kEvents =
      EnvSize("SWMON_BENCH_PARALLEL_EVENTS", kTiny ? 6000 : 30000);
  const std::size_t kMaxWorkers = EnvSize("SWMON_BENCH_PARALLEL_WORKERS", 8);
  std::printf("hardware threads: %zu | events: %zu | reps: %d (best-of)%s\n",
              HardwareWorkerCount(), kEvents, kReps,
              kTiny ? " | TINY gate mode" : "");

  bench::JsonReporter json("parallel");
  const auto events = MixedScenarioStream(kEvents, 42);
  // The gate measurement: 1 worker, batch 256, 13 properties (set below).
  double gate_overhead = 0;

  // Calibration sample: a prefix of the same stream shape (fresh engines —
  // the probe engines are throwaway, so the measured run starts cold).
  const auto sample = MixedScenarioStream(2000, 7);

  for (const std::size_t nprops : {4u, 13u}) {
    const std::vector<Property> props = Table1Properties(nprops);
    const auto weights = CalibrateShardWeights(props, sample);

    const std::size_t serial_violations = RunSerialOnce(props, events);
    const double serial_s =
        BestSeconds([&] { RunSerialOnce(props, events); });
    const double serial_eps = static_cast<double>(kEvents) / serial_s;
    bench::Section(("serial baseline, " + std::to_string(props.size()) +
                    " properties")
                       .c_str());
    std::printf("  %.0f events/sec (%.1f ns/event), %zu violations\n",
                serial_eps, 1e9 * serial_s / static_cast<double>(kEvents),
                serial_violations);
    json.AddRow()
        .Str("mode", "serial")
        .Num("properties", static_cast<double>(props.size()))
        .Num("workers", 0)
        .Num("batch", 0)
        .Num("events_per_sec", serial_eps)
        .Num("speedup", 1.0)
        .Num("violations", static_cast<double>(serial_violations));

    bench::Section(("parallel sweep, " + std::to_string(props.size()) +
                    " properties (calibrated shards)")
                       .c_str());
    std::printf("%8s | %6s | %14s | %8s | %10s\n", "workers", "batch",
                "events/sec", "speedup", "violations");
    for (std::size_t workers = 1; workers <= kMaxWorkers; workers *= 2) {
      for (const std::size_t batch : {64u, 256u, 1024u}) {
        if (batch != 256 && workers != 4) continue;  // batch sweep at 4 only
        const std::size_t violations =
            RunParallelOnce(props, events, workers, batch, &weights);
        if (violations != serial_violations) {
          std::printf(
              "SEMANTICS MISMATCH at workers=%zu batch=%zu: parallel=%zu "
              "serial=%zu\n",
              workers, batch, violations, serial_violations);
          return 1;
        }
        const double s = BestSeconds(
            [&] { RunParallelOnce(props, events, workers, batch, &weights); });
        const double eps = static_cast<double>(kEvents) / s;
        std::printf("%8zu | %6zu | %14.0f | %7.2fx | %10zu\n", workers, batch,
                    eps, eps / serial_eps, violations);
        if (workers == 1 && batch == 256 && props.size() == 13)
          gate_overhead = serial_eps / eps;
        json.AddRow()
            .Str("mode", "parallel")
            .Num("properties", static_cast<double>(props.size()))
            .Num("workers", static_cast<double>(workers))
            .Num("batch", static_cast<double>(batch))
            .Num("events_per_sec", eps)
            .Num("speedup", eps / serial_eps)
            .Num("violations", static_cast<double>(violations));
      }
    }

    // Uniform (round-robin-equivalent) sharding vs calibrated, 4 workers.
    if (props.size() > 4) {
      const std::size_t workers = std::min<std::size_t>(4, kMaxWorkers);
      const double uniform_s = BestSeconds(
          [&] { RunParallelOnce(props, events, workers, 256, nullptr); });
      const double uniform_eps = static_cast<double>(kEvents) / uniform_s;
      std::printf(
          "  uniform shards @ %zu workers: %.0f events/sec (%.2fx serial; "
          "calibration re-balances by measured candidate_checks)\n",
          workers, uniform_eps, uniform_eps / serial_eps);
      json.AddRow()
          .Str("mode", "parallel_uniform")
          .Num("properties", static_cast<double>(props.size()))
          .Num("workers", static_cast<double>(workers))
          .Num("batch", 256)
          .Num("events_per_sec", uniform_eps)
          .Num("speedup", uniform_eps / serial_eps)
          .Num("violations", static_cast<double>(serial_violations));
    }
  }

  // ---- single hot property: instance sharding vs serial -----------------
  // One keyed property, >=100k concurrent instances (full mode). Property
  // sharding pins it to a single worker, so its speedup is identically 1x;
  // only ShardMode::kInstance can spread the population.
  {
    const std::size_t hot_events =
        EnvSize("SWMON_BENCH_PARALLEL_HOT_EVENTS", kTiny ? 8000 : 160000);
    // ~80% of the stream creates a mostly-unique pair inside one long
    // window, so the live population approaches 0.8 * events.
    const std::uint64_t keys = kTiny ? 128 : 1024;
    const std::vector<Property> hot = {HotPairProperty()};
    std::string why;
    if (!BuildShardPlan(hot[0], MonitorConfig{}, &why).has_value()) {
      std::printf("HOT PROPERTY NOT SHARD-ELIGIBLE: %s\n", why.c_str());
      return 1;
    }
    const auto hot_stream = HotPairStream(hot_events, keys, 11);

    std::size_t peak_live = 0;
    {
      MonitorSet probe;
      probe.Add(hot[0]);
      for (const DataplaneEvent& ev : hot_stream) probe.OnDataplaneEvent(ev);
      peak_live = static_cast<std::size_t>(
          probe.TelemetrySnapshot().gauge("monitor.engine.hot-pairs.peak_live"));
    }
    const std::size_t hot_serial_violations = RunSerialOnce(hot, hot_stream);
    const double hot_serial_s =
        BestSeconds([&] { RunSerialOnce(hot, hot_stream); });
    const double hot_serial_eps =
        static_cast<double>(hot_events) / hot_serial_s;
    bench::Section("single hot property (instance sharding)");
    std::printf(
        "  serial: %.0f events/sec | peak %zu concurrent instances | %zu "
        "violations\n",
        hot_serial_eps, peak_live, hot_serial_violations);
    json.AddRow()
        .Str("mode", "hot_serial")
        .Num("properties", 1)
        .Num("workers", 0)
        .Num("batch", 0)
        .Num("events_per_sec", hot_serial_eps)
        .Num("speedup", 1.0)
        .Num("peak_instances", static_cast<double>(peak_live))
        .Num("violations", static_cast<double>(hot_serial_violations));

    std::printf("%8s | %14s | %8s | %10s\n", "workers", "events/sec",
                "speedup", "violations");
    for (std::size_t workers = 1; workers <= kMaxWorkers; workers *= 2) {
      const std::size_t violations = RunParallelOnce(
          hot, hot_stream, workers, 256, nullptr, ShardMode::kInstance);
      if (violations != hot_serial_violations) {
        std::printf(
            "SEMANTICS MISMATCH (hot, instance-sharded) at workers=%zu: "
            "parallel=%zu serial=%zu\n",
            workers, violations, hot_serial_violations);
        return 1;
      }
      const double s = BestSeconds([&] {
        RunParallelOnce(hot, hot_stream, workers, 256, nullptr,
                        ShardMode::kInstance);
      });
      const double eps = static_cast<double>(hot_events) / s;
      std::printf("%8zu | %14.0f | %7.2fx | %10zu\n", workers, eps,
                  eps / hot_serial_eps, violations);
      json.AddRow()
          .Str("mode", "hot_instance")
          .Num("properties", 1)
          .Num("workers", static_cast<double>(workers))
          .Num("batch", 256)
          .Num("events_per_sec", eps)
          .Num("speedup", eps / hot_serial_eps)
          .Num("peak_instances", static_cast<double>(peak_live))
          .Num("violations", static_cast<double>(violations));
    }
  }

  std::printf(
      "\nShape check: single-worker throughput tracks serial (batching "
      "overhead only); with more cores than one, events/sec scales toward "
      "the worker count — for the 13-property sweep until the heaviest "
      "engine's shard dominates, and for the hot-property sweep without "
      "that cap (instance sharding splits the one hot engine itself). "
      "Speedup is bounded by hardware threads — see the first line "
      "above.\n");
  json.Flush();

  // CI gate: batching must not cost more than 1.3x serial at 1 worker (the
  // pure-overhead configuration — same work, plus slab/ring traffic).
  // Enforced in TINY (smoke) mode, where CI runs it; always reported.
  std::printf("batching-overhead gate: 1-worker = %.2fx serial (budget "
              "1.3x)\n",
              gate_overhead);
  if (kTiny && gate_overhead > 1.3) {
    std::printf(
        "BATCHING OVERHEAD REGRESSION: 1-worker parallel is %.2fx serial "
        "(budget 1.3x)\n",
        gate_overhead);
    return 1;
  }
  return 0;
}
