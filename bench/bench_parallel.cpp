// Parallel — sharded worker-pool monitor execution (DESIGN.md "Parallel
// execution"): aggregate events/sec with all 13 Table-1 engines attached,
// serial MonitorSet versus ParallelMonitorSet sweeping workers x batch size
// x properties, plus calibrated (cost-balanced) versus uniform sharding.
// Sec 3.3 wants per-packet cost constant as properties grow; PR 2's filter
// cut wasted deliveries, this path adds the other axis — spreading the
// remaining real work across cores the way a hardware pipeline spreads
// stages. Violation counts are cross-checked against serial on every
// configuration (exit 1 on mismatch).
//
// Emits BENCH_parallel.json via bench_util's JsonReporter. Knobs (env):
//   SWMON_BENCH_JSON_DIR           where the JSON lands (bench target sets it)
//   SWMON_BENCH_PARALLEL_EVENTS    stream length (default 30000)
//   SWMON_BENCH_PARALLEL_WORKERS   max workers swept (default 8)
// Speedup is bounded by available cores — on a 1-core container the sweep
// degenerates to ~1x and mainly measures batching overhead.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/threading.hpp"
#include "monitor/monitor_set.hpp"
#include "monitor/parallel_monitor_set.hpp"
#include "properties/catalog.hpp"

namespace swmon {
namespace {

constexpr int kReps = 3;

std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  const long parsed = std::atol(v);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/// A mixed-scenario stream: interleaved TCP flows with matching egress,
/// ARP request/reply chatter, DHCP handshakes, FTP control traffic, and
/// link flaps — every Table-1 property family sees events it can react to,
/// so engine costs are heterogeneous (which is what makes cost-balanced
/// sharding matter).
std::vector<DataplaneEvent> MixedScenarioStream(std::size_t count,
                                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<DataplaneEvent> events;
  events.reserve(count);
  // Recently seen TCP flows; some egress events drop their return traffic
  // (a firewall violation), and the 100us clock lets ARP/DHCP reply
  // deadlines lapse mid-stream — the parity check needs real violations.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> flows;
  for (std::size_t i = 0; i < count; ++i) {
    DataplaneEvent ev;
    ev.time = SimTime::Zero() + Duration::Micros(static_cast<std::int64_t>(
                                    100 * (i + 1)));
    const auto roll = rng.NextBelow(100);
    if (roll < 40) {  // TCP arrival
      ev.type = DataplaneEventType::kArrival;
      ev.fields.Set(FieldId::kInPort, 1 + rng.NextBelow(4));
      ev.fields.Set(FieldId::kPacketId, i + 1);
      const std::uint64_t src = 1000 + rng.NextBelow(48);
      const std::uint64_t dst = 2000 + rng.NextBelow(48);
      ev.fields.Set(FieldId::kIpSrc, src);
      ev.fields.Set(FieldId::kIpDst, dst);
      ev.fields.Set(FieldId::kIpProto, 6);
      ev.fields.Set(FieldId::kL4SrcPort, 30000 + rng.NextBelow(256));
      ev.fields.Set(FieldId::kL4DstPort, rng.NextBool(0.5) ? 80 : 443);
      ev.fields.Set(FieldId::kEthSrc, 0xa0 + rng.NextBelow(16));
      if (flows.size() < 64) flows.emplace_back(src, dst);
    } else if (roll < 55) {  // egress (some of it return traffic / drops)
      ev.type = DataplaneEventType::kEgress;
      ev.fields.Set(FieldId::kPacketId, i + 1);
      if (!flows.empty() && rng.NextBool(0.3)) {
        // Return traffic for an established flow, occasionally dropped.
        const auto& [src, dst] = flows[rng.NextBelow(flows.size())];
        ev.fields.Set(FieldId::kIpSrc, dst);
        ev.fields.Set(FieldId::kIpDst, src);
      } else {
        ev.fields.Set(FieldId::kIpSrc, 2000 + rng.NextBelow(48));
        ev.fields.Set(FieldId::kIpDst, 1000 + rng.NextBelow(48));
      }
      ev.fields.Set(FieldId::kOutPort, 1 + rng.NextBelow(4));
      ev.fields.Set(FieldId::kEgressAction,
                    static_cast<std::uint64_t>(
                        rng.NextBool(0.1) ? EgressActionValue::kDrop
                                          : EgressActionValue::kForward));
    } else if (roll < 70) {  // ARP
      ev.type = DataplaneEventType::kArrival;
      ev.fields.Set(FieldId::kInPort, 1 + rng.NextBelow(4));
      ev.fields.Set(FieldId::kArpOp, rng.NextBool(0.5) ? 1 : 2);
      ev.fields.Set(FieldId::kArpSenderIp, 10 + rng.NextBelow(24));
      ev.fields.Set(FieldId::kArpTargetIp, 10 + rng.NextBelow(24));
      ev.fields.Set(FieldId::kArpSenderMac, 0xb0 + rng.NextBelow(24));
    } else if (roll < 85) {  // DHCP
      ev.type = DataplaneEventType::kArrival;
      ev.fields.Set(FieldId::kInPort, 1 + rng.NextBelow(4));
      ev.fields.Set(FieldId::kDhcpMsgType, 1 + rng.NextBelow(5));
      ev.fields.Set(FieldId::kDhcpChaddr, 0xc0 + rng.NextBelow(16));
      ev.fields.Set(FieldId::kDhcpXid, 1 + rng.NextBelow(64));
      ev.fields.Set(FieldId::kDhcpYiaddr, 300 + rng.NextBelow(16));
    } else if (roll < 95) {  // FTP control
      ev.type = DataplaneEventType::kArrival;
      ev.fields.Set(FieldId::kInPort, 1 + rng.NextBelow(4));
      ev.fields.Set(FieldId::kIpSrc, 1000 + rng.NextBelow(48));
      ev.fields.Set(FieldId::kIpDst, 2000 + rng.NextBelow(48));
      ev.fields.Set(FieldId::kL4DstPort, 21);
      ev.fields.Set(FieldId::kFtpMsgKind, rng.NextBelow(3));
      ev.fields.Set(FieldId::kFtpDataAddr, 1000 + rng.NextBelow(48));
      ev.fields.Set(FieldId::kFtpDataPort, 5000 + rng.NextBelow(64));
    } else {  // link flap
      ev.type = DataplaneEventType::kLinkStatus;
      ev.fields.Set(FieldId::kLinkId, 1 + rng.NextBelow(4));
      ev.fields.Set(FieldId::kLinkUp, rng.NextBool(0.5) ? 1 : 0);
    }
    events.push_back(std::move(ev));
  }
  return events;
}

std::vector<Property> Table1Properties(std::size_t count) {
  std::vector<Property> props;
  for (const CatalogEntry& e : BuildCatalog()) {
    if (!e.in_table1) continue;
    props.push_back(e.property);
    if (props.size() == count) break;
  }
  return props;
}

double BestSeconds(const std::function<void()>& run) {
  double best = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    run();
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (rep == 0 || s < best) best = s;
  }
  return best;
}

std::size_t RunSerialOnce(const std::vector<Property>& props,
                          const std::vector<DataplaneEvent>& events) {
  MonitorSet set;
  for (const Property& p : props) set.Add(p);
  for (const DataplaneEvent& ev : events) set.OnDataplaneEvent(ev);
  // Summed across engines via the snapshot wildcard query.
  return set.TelemetrySnapshot().counter("monitor.engine.*.violations");
}

std::size_t RunParallelOnce(const std::vector<Property>& props,
                            const std::vector<DataplaneEvent>& events,
                            std::size_t workers, std::size_t batch,
                            const std::vector<double>* weights) {
  ParallelConfig cfg;
  cfg.workers = workers;
  cfg.batch_capacity = batch;
  ParallelMonitorSet set(cfg);
  for (std::size_t i = 0; i < props.size(); ++i)
    set.Add(props[i], {}, weights ? (*weights)[i] : 1.0);
  set.Start();
  for (const DataplaneEvent& ev : events) set.OnDataplaneEvent(ev);
  set.Stop();
  return set.TelemetrySnapshot().counter("monitor.engine.*.violations");
}

}  // namespace
}  // namespace swmon

int main() {
  using namespace swmon;
  bench::Header(
      "bench_parallel", "Sec 3.3 (aggregate monitor throughput)",
      "engine state is independent across properties, so sharding engines "
      "over a worker pool scales aggregate events/sec with cores while the "
      "violation output stays bit-identical to serial execution");

  const std::size_t kEvents = EnvSize("SWMON_BENCH_PARALLEL_EVENTS", 30000);
  const std::size_t kMaxWorkers = EnvSize("SWMON_BENCH_PARALLEL_WORKERS", 8);
  std::printf("hardware threads: %zu | events: %zu | reps: %d (best-of)\n",
              HardwareWorkerCount(), kEvents, kReps);

  bench::JsonReporter json("parallel");
  const auto events = MixedScenarioStream(kEvents, 42);

  // Calibration sample: a prefix of the same stream shape (fresh engines —
  // the probe engines are throwaway, so the measured run starts cold).
  const auto sample = MixedScenarioStream(2000, 7);

  for (const std::size_t nprops : {4u, 13u}) {
    const std::vector<Property> props = Table1Properties(nprops);
    const auto weights = CalibrateShardWeights(props, sample);

    const std::size_t serial_violations = RunSerialOnce(props, events);
    const double serial_s =
        BestSeconds([&] { RunSerialOnce(props, events); });
    const double serial_eps = static_cast<double>(kEvents) / serial_s;
    bench::Section(("serial baseline, " + std::to_string(props.size()) +
                    " properties")
                       .c_str());
    std::printf("  %.0f events/sec (%.1f ns/event), %zu violations\n",
                serial_eps, 1e9 * serial_s / static_cast<double>(kEvents),
                serial_violations);
    json.AddRow()
        .Str("mode", "serial")
        .Num("properties", static_cast<double>(props.size()))
        .Num("workers", 0)
        .Num("batch", 0)
        .Num("events_per_sec", serial_eps)
        .Num("speedup", 1.0)
        .Num("violations", static_cast<double>(serial_violations));

    bench::Section(("parallel sweep, " + std::to_string(props.size()) +
                    " properties (calibrated shards)")
                       .c_str());
    std::printf("%8s | %6s | %14s | %8s | %10s\n", "workers", "batch",
                "events/sec", "speedup", "violations");
    for (std::size_t workers = 1; workers <= kMaxWorkers; workers *= 2) {
      for (const std::size_t batch : {64u, 256u, 1024u}) {
        if (batch != 256 && workers != 4) continue;  // batch sweep at 4 only
        const std::size_t violations =
            RunParallelOnce(props, events, workers, batch, &weights);
        if (violations != serial_violations) {
          std::printf(
              "SEMANTICS MISMATCH at workers=%zu batch=%zu: parallel=%zu "
              "serial=%zu\n",
              workers, batch, violations, serial_violations);
          return 1;
        }
        const double s = BestSeconds(
            [&] { RunParallelOnce(props, events, workers, batch, &weights); });
        const double eps = static_cast<double>(kEvents) / s;
        std::printf("%8zu | %6zu | %14.0f | %7.2fx | %10zu\n", workers, batch,
                    eps, eps / serial_eps, violations);
        json.AddRow()
            .Str("mode", "parallel")
            .Num("properties", static_cast<double>(props.size()))
            .Num("workers", static_cast<double>(workers))
            .Num("batch", static_cast<double>(batch))
            .Num("events_per_sec", eps)
            .Num("speedup", eps / serial_eps)
            .Num("violations", static_cast<double>(violations));
      }
    }

    // Uniform (round-robin-equivalent) sharding vs calibrated, 4 workers.
    if (props.size() > 4) {
      const std::size_t workers = std::min<std::size_t>(4, kMaxWorkers);
      const double uniform_s = BestSeconds(
          [&] { RunParallelOnce(props, events, workers, 256, nullptr); });
      const double uniform_eps = static_cast<double>(kEvents) / uniform_s;
      std::printf(
          "  uniform shards @ %zu workers: %.0f events/sec (%.2fx serial; "
          "calibration re-balances by measured candidate_checks)\n",
          workers, uniform_eps, uniform_eps / serial_eps);
      json.AddRow()
          .Str("mode", "parallel_uniform")
          .Num("properties", static_cast<double>(props.size()))
          .Num("workers", static_cast<double>(workers))
          .Num("batch", 256)
          .Num("events_per_sec", uniform_eps)
          .Num("speedup", uniform_eps / serial_eps)
          .Num("violations", static_cast<double>(serial_violations));
    }
  }

  std::printf(
      "\nShape check: single-worker throughput tracks serial (batching "
      "overhead only, target <=5%%); with more cores than one, events/sec "
      "scales toward the worker count until the heaviest engine's shard "
      "dominates (speedup is capped by hardware threads — see the first "
      "line above).\n");
  json.Flush();
  return 0;
}
