// E3 — Sec 3.3: "the number of active instances determines the pipeline
// depth, which can greatly affect packet processing time" (Varanus), versus
// the bounded alternatives: one table per observation stage (static
// Varanus) or hashed per-flow state (OpenState / P4 registers).
//
// Sweep: N live firewall instances, then 1000 probe packets. Report the
// monitor pipeline depth and the modeled per-probe processing cost.
#include <cstdio>
#include <vector>

#include "backends/backend.hpp"
#include "backends/table_monitor.hpp"
#include "bench_util.hpp"
#include "properties/catalog.hpp"

namespace swmon {
namespace {

std::vector<DataplaneEvent> MakeWorkload(std::size_t instances,
                                         std::size_t probes) {
  std::vector<DataplaneEvent> events;
  SimTime t = SimTime::Zero() + Duration::Millis(1);
  // Open N connections (N live monitor instances).
  for (std::size_t c = 0; c < instances; ++c) {
    DataplaneEvent ev;
    ev.type = DataplaneEventType::kArrival;
    ev.time = t;
    ev.fields.Set(FieldId::kInPort, 1);
    ev.fields.Set(FieldId::kIpSrc, 1000 + c);
    ev.fields.Set(FieldId::kIpDst, 99);
    events.push_back(ev);
    t = t + Duration::Millis(1);  // slow enough for slow-path installs
  }
  // Probe traffic: forwarded returns (no violations, but every packet
  // traverses the monitor pipeline).
  for (std::size_t i = 0; i < probes; ++i) {
    DataplaneEvent ev;
    ev.type = DataplaneEventType::kEgress;
    ev.time = t;
    ev.fields.Set(FieldId::kIpSrc, 99);
    ev.fields.Set(FieldId::kIpDst, 1000 + i % std::max<std::size_t>(instances, 1));
    ev.fields.Set(FieldId::kEgressAction,
                  static_cast<std::uint64_t>(EgressActionValue::kForward));
    events.push_back(ev);
    t = t + Duration::Micros(10);
  }
  return events;
}

}  // namespace
}  // namespace swmon

int main() {
  using namespace swmon;
  bench::Header(
      "bench_pipeline_depth", "Sec 3.3 (Varanus scaling)",
      "Varanus's pipeline depth grows linearly with live instances — "
      "per-packet cost grows with N; static Varanus and register/state-table "
      "designs stay flat");

  const Property prop = FirewallReturnNotDropped();
  const char* names[] = {"Varanus", "Static Varanus", "OpenState", "POF / P4",
                         "Varanus (tables)", "Static (tables)"};
  const CostParams params;
  bench::JsonReporter json("pipeline_depth");

  std::printf("\n%8s", "N");
  for (const char* n : names) std::printf(" | %-22s", n);
  std::printf("\n%8s", "");
  for (std::size_t i = 0; i < std::size(names); ++i)
    std::printf(" | %10s %11s", "depth", "ns/probe");
  std::printf("\n");

  for (std::size_t n : {1u, 4u, 16u, 64u, 256u, 1024u, 4096u}) {
    const auto events = MakeWorkload(n, 1000);
    std::printf("%8zu", n);
    for (const char* name : names) {
      std::unique_ptr<CompiledMonitor> mon;
      // The "(tables)" rows run the recursive-learn compilation on real
      // flow tables (backends/table_monitor) instead of the executor.
      if (std::string(name) == "Varanus (tables)") {
        mon = std::make_unique<TableMonitor>(prop, params, false);
      } else if (std::string(name) == "Static (tables)") {
        mon = std::make_unique<TableMonitor>(prop, params, true);
      } else {
        for (auto& b : AllBackends()) {
          if (b->info().name == name) {
            auto r = b->Compile(prop, params);
            mon = std::move(r.monitor);
          }
        }
      }
      // Split the replay: creation phase, then measure the probe phase.
      std::size_t i = 0;
      for (; i < n; ++i) mon->OnDataplaneEvent(events[i]);
      mon->AdvanceTime(events[n].time);  // settle slow-path installs
      const std::uint64_t before =
          mon->TelemetrySnapshot("m").counter("m.processing_ns");
      for (; i < events.size(); ++i) mon->OnDataplaneEvent(events[i]);
      const std::uint64_t after =
          mon->TelemetrySnapshot("m").counter("m.processing_ns");
      const double ns = static_cast<double>(after - before) / 1000.0;
      std::printf(" | %10zu %9.0f n", mon->PipelineDepth(), ns);
      json.AddRow()
          .Str("backend", name)
          .Num("instances", static_cast<double>(n))
          .Num("depth", static_cast<double>(mon->PipelineDepth()))
          .Num("ns_per_probe", ns);
    }
    std::printf("\n");
  }
  json.Flush();
  std::printf(
      "\nShape check: the Varanus column's ns/probe grows ~linearly with N "
      "(depth = N+1 tables); the other three stay constant — reproducing the "
      "paper's argument for bounding the pipeline.\n");
  return 0;
}
