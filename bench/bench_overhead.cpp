// E9 — Sec 3.3: "Monitoring on-switch unavoidably incurs a latency cost,
// however small, since it lengthens the switch's pipeline."
//
// Two sweeps on the bounded (static-Varanus-style) design:
//   1. per-packet modeled cost vs the number of observation stages of one
//      property (pipeline length = stages), and
//   2. per-packet modeled cost vs the number of properties attached
//      (pipelines compose additively).
#include <cstdio>
#include <memory>

#include "backends/executor.hpp"
#include "bench_util.hpp"
#include "monitor/property_builder.hpp"
#include "properties/catalog.hpp"

namespace swmon {
namespace {

/// A synthetic chain property with `stages` arrival observations: stage i
/// matches a UDP datagram to port 9000+i from the bound source.
Property ChainProperty(std::size_t stages) {
  PropertyBuilder b("chain-" + std::to_string(stages), "synthetic chain");
  const VarId H = b.Var("H");
  b.AddStage("s1")
      .Match(PatternBuilder::Arrival().Eq(FieldId::kL4DstPort, 9000).Build())
      .Bind(H, FieldId::kIpSrc);
  for (std::size_t i = 1; i < stages; ++i) {
    b.AddStage("s" + std::to_string(i + 1))
        .Match(PatternBuilder::Arrival()
                   .Eq(FieldId::kL4DstPort, 9000 + i)
                   .EqVar(FieldId::kIpSrc, H)
                   .Build());
  }
  return std::move(b).Build();
}

DataplaneEvent Probe(std::size_t i) {
  DataplaneEvent ev;
  ev.type = DataplaneEventType::kArrival;
  ev.time = SimTime::Zero() + Duration::Micros(10) * (i + 1);
  ev.fields.Set(FieldId::kIpSrc, 7);
  ev.fields.Set(FieldId::kIpDst, 8);
  ev.fields.Set(FieldId::kL4DstPort, 80);  // matches no chain stage
  ev.fields.Set(FieldId::kEgressAction, 0);
  return ev;
}

}  // namespace
}  // namespace swmon

int main() {
  using namespace swmon;
  bench::Header("bench_overhead", "Sec 3.3 (monitoring latency cost)",
                "every monitor stage lengthens the pipeline; overhead is "
                "proportional to stages and to attached properties");

  const CostParams params;
  const std::size_t kProbes = 2000;
  bench::JsonReporter json("overhead");

  bench::Section("per-packet cost vs observation stages (one property)");
  std::printf("%8s | %10s | %12s\n", "stages", "depth", "ns/packet");
  for (std::size_t stages : {2u, 3u, 4u, 6u, 8u}) {
    FragmentExecutor mon(
        ChainProperty(stages),
        std::make_unique<VaranusStore>(params, stages, /*static=*/true),
        params);
    for (std::size_t i = 0; i < kProbes; ++i)
      mon.OnDataplaneEvent(Probe(i));
    const double ns = static_cast<double>(mon.TelemetrySnapshot("m").counter(
                          "m.processing_ns")) /
                      kProbes;
    std::printf("%8zu | %10zu | %12.0f\n", stages, mon.PipelineDepth(), ns);
    json.AddRow()
        .Str("sweep", "stages")
        .Num("stages", static_cast<double>(stages))
        .Num("depth", static_cast<double>(mon.PipelineDepth()))
        .Num("ns_per_packet", ns);
  }

  bench::Section("per-packet cost vs attached properties (3 stages each)");
  std::printf("%8s | %12s\n", "props", "ns/packet");
  for (std::size_t props : {0u, 1u, 2u, 4u, 8u}) {
    std::vector<std::unique_ptr<FragmentExecutor>> monitors;
    for (std::size_t p = 0; p < props; ++p) {
      monitors.push_back(std::make_unique<FragmentExecutor>(
          ChainProperty(3),
          std::make_unique<VaranusStore>(params, 3, /*static=*/true),
          params));
    }
    for (std::size_t i = 0; i < kProbes; ++i) {
      const auto ev = Probe(i);
      for (auto& m : monitors) m->OnDataplaneEvent(ev);
    }
    std::uint64_t total_ns = 0;
    for (auto& m : monitors)
      total_ns += m->TelemetrySnapshot("m").counter("m.processing_ns");
    const double ns = static_cast<double>(total_ns) / kProbes;
    std::printf("%8zu | %12.0f\n", props, ns);
    json.AddRow()
        .Str("sweep", "properties")
        .Num("properties", static_cast<double>(props))
        .Num("ns_per_packet", ns);
  }
  json.Flush();
  std::printf(
      "\nShape check: both sweeps are linear — the unavoidable, bounded "
      "latency cost of on-switch monitoring that Sec 3.3 concedes, versus "
      "Varanus's unbounded growth in bench_pipeline_depth.\n");
  return 0;
}
