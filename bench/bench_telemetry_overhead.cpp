// Telemetry hot-path overhead: instrumented vs compile-time no-op dispatch.
//
// The telemetry design promise (DESIGN.md §5g) is that instrumenting the
// monitor hot path costs < 3%: engines keep plain single-threaded counter
// shards (merged only at snapshot time), and the only per-event addition is
// a 1-in-16 sampled pair of steady_clock reads feeding the dispatch-latency
// histogram. Both hot paths exist in every binary as the two
// specializations of MonitorSet::DeliverEvent<bool> — the SWMON_TELEMETRY
// macro merely selects which one OnDataplaneEvent calls — so this bench
// times them head-to-head in one process and FAILS (exit 1) if the
// instrumented path is >= 3% slower. Emits BENCH_telemetry_overhead.json.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "monitor/monitor_set.hpp"
#include "properties/catalog.hpp"
#include "telemetry/metrics.hpp"

namespace swmon {
namespace {

std::vector<Property> Table1Properties() {
  std::vector<Property> props;
  for (const CatalogEntry& e : BuildCatalog())
    if (e.in_table1) props.push_back(e.property);
  return props;
}

std::vector<DataplaneEvent> EventSoup(std::uint64_t seed, int count) {
  Rng rng(seed);
  std::vector<DataplaneEvent> events;
  SimTime t = SimTime::Zero();
  for (int i = 0; i < count; ++i) {
    DataplaneEvent ev;
    t = t + Duration::Millis(1 + static_cast<std::int64_t>(rng.NextBelow(40)));
    ev.time = t;
    const auto roll = rng.NextBelow(10);
    ev.type = roll < 4   ? DataplaneEventType::kArrival
              : roll < 8 ? DataplaneEventType::kEgress
                         : DataplaneEventType::kLinkStatus;
    for (std::size_t f = 0; f < kNumFieldIds; ++f) {
      if (rng.NextBool(0.35))
        ev.fields.Set(static_cast<FieldId>(f), rng.NextBelow(8));
    }
    events.push_back(std::move(ev));
  }
  return events;
}

/// Wall time of one full replay through a fresh set. `kInstrumented`
/// selects the DeliverEvent specialization; when true a registry is
/// attached so the latency histogram is armed (the worst case: sampled
/// clock reads actually happen).
template <bool kInstrumented>
double OneRepSeconds(const std::vector<Property>& props,
                     const std::vector<DataplaneEvent>& events) {
  telemetry::MetricsRegistry registry;
  MonitorSet set;
  if (kInstrumented) set.AttachTelemetry(&registry);
  for (const Property& p : props) set.Add(p);
  const auto t0 = std::chrono::steady_clock::now();
  for (const DataplaneEvent& ev : events)
    set.template DeliverEvent<kInstrumented>(ev);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace
}  // namespace swmon

int main() {
  using namespace swmon;
  bench::Header("bench_telemetry_overhead",
                "telemetry acceptance gate (DESIGN.md §5g)",
                "snapshot-merged telemetry must cost the monitor hot path "
                "< 3% vs the compile-time no-op dispatch");

  const std::vector<Property> props = Table1Properties();
  const auto events = EventSoup(/*seed=*/99, /*count=*/60000);
  const int kReps = 9;

  // Warm both paths, then measure the reps INTERLEAVED (plain, instrumented,
  // plain, ...) so frequency drift or a noisy co-tenant hits both sides
  // equally instead of landing entirely on whichever block ran second.
  // Best-of on each side then compares the two paths at the machine's
  // quietest moments.
  OneRepSeconds<false>(props, events);
  OneRepSeconds<true>(props, events);
  double plain_s = 0.0, instr_s = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const double p = OneRepSeconds<false>(props, events);
    const double i = OneRepSeconds<true>(props, events);
    if (rep == 0 || p < plain_s) plain_s = p;
    if (rep == 0 || i < instr_s) instr_s = i;
  }

  const double n = static_cast<double>(events.size());
  const double plain_ns = plain_s / n * 1e9;
  const double instr_ns = instr_s / n * 1e9;
  const double overhead_pct = (instr_s / plain_s - 1.0) * 100.0;

  bench::Section("instrumented vs no-op dispatch (13 Table-1 properties)");
  std::printf("%16s | %12s\n", "path", "ns/event");
  std::printf("%16s | %12.1f\n", "no-op", plain_ns);
  std::printf("%16s | %12.1f\n", "instrumented", instr_ns);
  std::printf("\noverhead: %+.2f%% (budget < 3%%)\n", overhead_pct);

  bench::JsonReporter json("telemetry_overhead");
  json.AddRow()
      .Str("path", "noop")
      .Num("ns_per_event", plain_ns)
      .Num("events", n)
      .Num("properties", static_cast<double>(props.size()));
  json.AddRow()
      .Str("path", "instrumented")
      .Num("ns_per_event", instr_ns)
      .Num("events", n)
      .Num("properties", static_cast<double>(props.size()));
  json.AddRow().Str("path", "summary").Num("overhead_pct", overhead_pct);
  json.Flush();

  if (overhead_pct >= 3.0) {
    std::printf("FAIL: telemetry overhead %.2f%% >= 3%% budget\n",
                overhead_pct);
    return 1;
  }
  std::printf("PASS: telemetry overhead within budget\n");
  return 0;
}
