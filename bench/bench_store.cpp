// Ablation — the engine's instance store (DESIGN.md §5.1): link-key
// indexing vs linear scan. The indexed store is the software analogue of
// the register/static layout Sec 3.3 argues for; the linear store is the
// per-instance-table (Varanus) layout. Wall-clock, google-benchmark.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.hpp"
#include "monitor/engine.hpp"
#include "properties/catalog.hpp"
#include "telemetry/snapshot.hpp"

namespace swmon {
namespace {

std::vector<DataplaneEvent> FirewallEvents(std::size_t hosts,
                                           std::size_t count,
                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<DataplaneEvent> events;
  events.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    DataplaneEvent ev;
    ev.time = SimTime::Zero() + Duration::Micros(static_cast<std::int64_t>(i));
    const std::uint64_t a = rng.NextBelow(hosts), b = rng.NextBelow(hosts);
    if (rng.NextBool(0.7)) {
      ev.type = DataplaneEventType::kArrival;
      ev.fields.Set(FieldId::kInPort, 1);
      ev.fields.Set(FieldId::kIpSrc, 1000 + a);
      ev.fields.Set(FieldId::kIpDst, 2000 + b);
    } else {
      ev.type = DataplaneEventType::kEgress;
      ev.fields.Set(FieldId::kIpSrc, 2000 + b);
      ev.fields.Set(FieldId::kIpDst, 1000 + a);
      ev.fields.Set(FieldId::kEgressAction,
                    static_cast<std::uint64_t>(
                        rng.NextBool(0.1) ? EgressActionValue::kDrop
                                          : EgressActionValue::kForward));
    }
    events.push_back(std::move(ev));
  }
  return events;
}

void RunEngine(benchmark::State& state, bool linear) {
  const std::size_t hosts = static_cast<std::size_t>(state.range(0));
  const auto events = FirewallEvents(hosts, 20000, 42);
  const Property prop = FirewallReturnNotDropped();
  std::uint64_t violations = 0;
  for (auto _ : state) {
    MonitorConfig mc;
    mc.force_linear_store = linear;
    MonitorEngine engine(prop, mc);
    for (const auto& ev : events) engine.ProcessEvent(ev);
    violations += engine.violations().size();
  }
  benchmark::DoNotOptimize(violations);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events.size()));
}

void BM_EngineIndexedStore(benchmark::State& state) {
  RunEngine(state, /*linear=*/false);
}
BENCHMARK(BM_EngineIndexedStore)->Arg(16)->Arg(256)->Arg(2048);

void BM_EngineLinearStore(benchmark::State& state) {
  RunEngine(state, /*linear=*/true);
}
BENCHMARK(BM_EngineLinearStore)->Arg(16)->Arg(256)->Arg(2048);

void BM_MonitorCatalogFanout(benchmark::State& state) {
  // All 21 catalog properties attached at once over generic traffic: the
  // realistic "monitor everything" cost of the reference engine.
  const auto events = FirewallEvents(128, 5000, 7);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    std::vector<std::unique_ptr<MonitorEngine>> engines;
    for (auto& e : BuildCatalog())
      engines.push_back(std::make_unique<MonitorEngine>(e.property));
    for (const auto& ev : events)
      for (auto& eng : engines) eng->ProcessEvent(ev);
    for (auto& eng : engines) {
      telemetry::Snapshot snap;
      eng->CollectInto(snap, "e");
      sink += snap.counter("monitor.engine.e.events");
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_MonitorCatalogFanout);

}  // namespace
}  // namespace swmon

BENCHMARK_MAIN();
