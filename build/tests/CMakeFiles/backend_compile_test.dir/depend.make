# Empty dependencies file for backend_compile_test.
# This may be replaced when dependencies are built.
