file(REMOVE_RECURSE
  "CMakeFiles/backend_compile_test.dir/backend_compile_test.cpp.o"
  "CMakeFiles/backend_compile_test.dir/backend_compile_test.cpp.o.d"
  "backend_compile_test"
  "backend_compile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backend_compile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
