# Empty dependencies file for lb_scenario_test.
# This may be replaced when dependencies are built.
