file(REMOVE_RECURSE
  "CMakeFiles/lb_scenario_test.dir/lb_scenario_test.cpp.o"
  "CMakeFiles/lb_scenario_test.dir/lb_scenario_test.cpp.o.d"
  "lb_scenario_test"
  "lb_scenario_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lb_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
