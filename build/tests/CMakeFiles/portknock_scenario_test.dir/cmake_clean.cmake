file(REMOVE_RECURSE
  "CMakeFiles/portknock_scenario_test.dir/portknock_scenario_test.cpp.o"
  "CMakeFiles/portknock_scenario_test.dir/portknock_scenario_test.cpp.o.d"
  "portknock_scenario_test"
  "portknock_scenario_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portknock_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
