# Empty dependencies file for portknock_scenario_test.
# This may be replaced when dependencies are built.
