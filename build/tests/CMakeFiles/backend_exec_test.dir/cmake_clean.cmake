file(REMOVE_RECURSE
  "CMakeFiles/backend_exec_test.dir/backend_exec_test.cpp.o"
  "CMakeFiles/backend_exec_test.dir/backend_exec_test.cpp.o.d"
  "backend_exec_test"
  "backend_exec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backend_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
