file(REMOVE_RECURSE
  "CMakeFiles/table_monitor_test.dir/table_monitor_test.cpp.o"
  "CMakeFiles/table_monitor_test.dir/table_monitor_test.cpp.o.d"
  "table_monitor_test"
  "table_monitor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
