# Empty compiler generated dependencies file for monitor_instance_test.
# This may be replaced when dependencies are built.
