file(REMOVE_RECURSE
  "CMakeFiles/monitor_instance_test.dir/monitor_instance_test.cpp.o"
  "CMakeFiles/monitor_instance_test.dir/monitor_instance_test.cpp.o.d"
  "monitor_instance_test"
  "monitor_instance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_instance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
