# Empty dependencies file for ftp_scenario_test.
# This may be replaced when dependencies are built.
