file(REMOVE_RECURSE
  "CMakeFiles/ftp_scenario_test.dir/ftp_scenario_test.cpp.o"
  "CMakeFiles/ftp_scenario_test.dir/ftp_scenario_test.cpp.o.d"
  "ftp_scenario_test"
  "ftp_scenario_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftp_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
