file(REMOVE_RECURSE
  "CMakeFiles/monitor_engine_test.dir/monitor_engine_test.cpp.o"
  "CMakeFiles/monitor_engine_test.dir/monitor_engine_test.cpp.o.d"
  "monitor_engine_test"
  "monitor_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
