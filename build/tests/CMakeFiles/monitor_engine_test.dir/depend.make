# Empty dependencies file for monitor_engine_test.
# This may be replaced when dependencies are built.
