# Empty dependencies file for arp_scenario_test.
# This may be replaced when dependencies are built.
