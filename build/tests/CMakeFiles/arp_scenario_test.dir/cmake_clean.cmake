file(REMOVE_RECURSE
  "CMakeFiles/arp_scenario_test.dir/arp_scenario_test.cpp.o"
  "CMakeFiles/arp_scenario_test.dir/arp_scenario_test.cpp.o.d"
  "arp_scenario_test"
  "arp_scenario_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arp_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
