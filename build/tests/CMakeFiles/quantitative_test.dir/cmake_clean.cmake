file(REMOVE_RECURSE
  "CMakeFiles/quantitative_test.dir/quantitative_test.cpp.o"
  "CMakeFiles/quantitative_test.dir/quantitative_test.cpp.o.d"
  "quantitative_test"
  "quantitative_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantitative_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
