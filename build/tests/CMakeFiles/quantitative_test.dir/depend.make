# Empty dependencies file for quantitative_test.
# This may be replaced when dependencies are built.
