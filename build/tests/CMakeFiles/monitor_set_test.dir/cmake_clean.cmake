file(REMOVE_RECURSE
  "CMakeFiles/monitor_set_test.dir/monitor_set_test.cpp.o"
  "CMakeFiles/monitor_set_test.dir/monitor_set_test.cpp.o.d"
  "monitor_set_test"
  "monitor_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
