# Empty dependencies file for monitor_set_test.
# This may be replaced when dependencies are built.
