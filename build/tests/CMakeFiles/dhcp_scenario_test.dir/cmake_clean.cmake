file(REMOVE_RECURSE
  "CMakeFiles/dhcp_scenario_test.dir/dhcp_scenario_test.cpp.o"
  "CMakeFiles/dhcp_scenario_test.dir/dhcp_scenario_test.cpp.o.d"
  "dhcp_scenario_test"
  "dhcp_scenario_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhcp_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
