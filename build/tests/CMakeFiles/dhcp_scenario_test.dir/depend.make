# Empty dependencies file for dhcp_scenario_test.
# This may be replaced when dependencies are built.
