file(REMOVE_RECURSE
  "CMakeFiles/firewall_scenario_test.dir/firewall_scenario_test.cpp.o"
  "CMakeFiles/firewall_scenario_test.dir/firewall_scenario_test.cpp.o.d"
  "firewall_scenario_test"
  "firewall_scenario_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firewall_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
