# Empty compiler generated dependencies file for firewall_scenario_test.
# This may be replaced when dependencies are built.
