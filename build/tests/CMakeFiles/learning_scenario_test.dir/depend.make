# Empty dependencies file for learning_scenario_test.
# This may be replaced when dependencies are built.
