file(REMOVE_RECURSE
  "CMakeFiles/learning_scenario_test.dir/learning_scenario_test.cpp.o"
  "CMakeFiles/learning_scenario_test.dir/learning_scenario_test.cpp.o.d"
  "learning_scenario_test"
  "learning_scenario_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learning_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
