# Empty dependencies file for monitor_timeout_test.
# This may be replaced when dependencies are built.
