file(REMOVE_RECURSE
  "CMakeFiles/monitor_timeout_test.dir/monitor_timeout_test.cpp.o"
  "CMakeFiles/monitor_timeout_test.dir/monitor_timeout_test.cpp.o.d"
  "monitor_timeout_test"
  "monitor_timeout_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_timeout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
