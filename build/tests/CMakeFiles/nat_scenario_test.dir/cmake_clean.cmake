file(REMOVE_RECURSE
  "CMakeFiles/nat_scenario_test.dir/nat_scenario_test.cpp.o"
  "CMakeFiles/nat_scenario_test.dir/nat_scenario_test.cpp.o.d"
  "nat_scenario_test"
  "nat_scenario_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nat_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
