# Empty dependencies file for nat_scenario_test.
# This may be replaced when dependencies are built.
