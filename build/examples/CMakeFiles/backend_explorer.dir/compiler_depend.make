# Empty compiler generated dependencies file for backend_explorer.
# This may be replaced when dependencies are built.
