# Empty dependencies file for nat_audit.
# This may be replaced when dependencies are built.
