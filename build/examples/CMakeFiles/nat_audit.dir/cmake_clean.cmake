file(REMOVE_RECURSE
  "CMakeFiles/nat_audit.dir/nat_audit.cpp.o"
  "CMakeFiles/nat_audit.dir/nat_audit.cpp.o.d"
  "nat_audit"
  "nat_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nat_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
