file(REMOVE_RECURSE
  "CMakeFiles/spl_check.dir/spl_check.cpp.o"
  "CMakeFiles/spl_check.dir/spl_check.cpp.o.d"
  "spl_check"
  "spl_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spl_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
