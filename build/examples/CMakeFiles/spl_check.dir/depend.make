# Empty dependencies file for spl_check.
# This may be replaced when dependencies are built.
