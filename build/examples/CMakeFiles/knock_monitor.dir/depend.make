# Empty dependencies file for knock_monitor.
# This may be replaced when dependencies are built.
