file(REMOVE_RECURSE
  "CMakeFiles/knock_monitor.dir/knock_monitor.cpp.o"
  "CMakeFiles/knock_monitor.dir/knock_monitor.cpp.o.d"
  "knock_monitor"
  "knock_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knock_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
