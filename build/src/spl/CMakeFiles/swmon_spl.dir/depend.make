# Empty dependencies file for swmon_spl.
# This may be replaced when dependencies are built.
