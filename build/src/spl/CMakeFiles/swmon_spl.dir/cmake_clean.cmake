file(REMOVE_RECURSE
  "CMakeFiles/swmon_spl.dir/parser.cpp.o"
  "CMakeFiles/swmon_spl.dir/parser.cpp.o.d"
  "CMakeFiles/swmon_spl.dir/serializer.cpp.o"
  "CMakeFiles/swmon_spl.dir/serializer.cpp.o.d"
  "libswmon_spl.a"
  "libswmon_spl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swmon_spl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
