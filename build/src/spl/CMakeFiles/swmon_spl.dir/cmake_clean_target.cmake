file(REMOVE_RECURSE
  "libswmon_spl.a"
)
