file(REMOVE_RECURSE
  "CMakeFiles/swmon_common.dir/byte_io.cpp.o"
  "CMakeFiles/swmon_common.dir/byte_io.cpp.o.d"
  "CMakeFiles/swmon_common.dir/logging.cpp.o"
  "CMakeFiles/swmon_common.dir/logging.cpp.o.d"
  "CMakeFiles/swmon_common.dir/rng.cpp.o"
  "CMakeFiles/swmon_common.dir/rng.cpp.o.d"
  "CMakeFiles/swmon_common.dir/sim_time.cpp.o"
  "CMakeFiles/swmon_common.dir/sim_time.cpp.o.d"
  "libswmon_common.a"
  "libswmon_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swmon_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
