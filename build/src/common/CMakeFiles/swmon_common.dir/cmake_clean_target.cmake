file(REMOVE_RECURSE
  "libswmon_common.a"
)
