# Empty dependencies file for swmon_common.
# This may be replaced when dependencies are built.
