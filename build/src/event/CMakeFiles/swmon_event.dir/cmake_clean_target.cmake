file(REMOVE_RECURSE
  "libswmon_event.a"
)
