file(REMOVE_RECURSE
  "CMakeFiles/swmon_event.dir/event_queue.cpp.o"
  "CMakeFiles/swmon_event.dir/event_queue.cpp.o.d"
  "CMakeFiles/swmon_event.dir/timer_set.cpp.o"
  "CMakeFiles/swmon_event.dir/timer_set.cpp.o.d"
  "libswmon_event.a"
  "libswmon_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swmon_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
