# Empty dependencies file for swmon_event.
# This may be replaced when dependencies are built.
