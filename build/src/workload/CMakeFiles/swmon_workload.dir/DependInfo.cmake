
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/arp_scenario.cpp" "src/workload/CMakeFiles/swmon_workload.dir/arp_scenario.cpp.o" "gcc" "src/workload/CMakeFiles/swmon_workload.dir/arp_scenario.cpp.o.d"
  "/root/repo/src/workload/dhcp_agent.cpp" "src/workload/CMakeFiles/swmon_workload.dir/dhcp_agent.cpp.o" "gcc" "src/workload/CMakeFiles/swmon_workload.dir/dhcp_agent.cpp.o.d"
  "/root/repo/src/workload/dhcp_scenario.cpp" "src/workload/CMakeFiles/swmon_workload.dir/dhcp_scenario.cpp.o" "gcc" "src/workload/CMakeFiles/swmon_workload.dir/dhcp_scenario.cpp.o.d"
  "/root/repo/src/workload/firewall_scenario.cpp" "src/workload/CMakeFiles/swmon_workload.dir/firewall_scenario.cpp.o" "gcc" "src/workload/CMakeFiles/swmon_workload.dir/firewall_scenario.cpp.o.d"
  "/root/repo/src/workload/ftp_scenario.cpp" "src/workload/CMakeFiles/swmon_workload.dir/ftp_scenario.cpp.o" "gcc" "src/workload/CMakeFiles/swmon_workload.dir/ftp_scenario.cpp.o.d"
  "/root/repo/src/workload/lb_scenario.cpp" "src/workload/CMakeFiles/swmon_workload.dir/lb_scenario.cpp.o" "gcc" "src/workload/CMakeFiles/swmon_workload.dir/lb_scenario.cpp.o.d"
  "/root/repo/src/workload/learning_scenario.cpp" "src/workload/CMakeFiles/swmon_workload.dir/learning_scenario.cpp.o" "gcc" "src/workload/CMakeFiles/swmon_workload.dir/learning_scenario.cpp.o.d"
  "/root/repo/src/workload/nat_scenario.cpp" "src/workload/CMakeFiles/swmon_workload.dir/nat_scenario.cpp.o" "gcc" "src/workload/CMakeFiles/swmon_workload.dir/nat_scenario.cpp.o.d"
  "/root/repo/src/workload/portknock_scenario.cpp" "src/workload/CMakeFiles/swmon_workload.dir/portknock_scenario.cpp.o" "gcc" "src/workload/CMakeFiles/swmon_workload.dir/portknock_scenario.cpp.o.d"
  "/root/repo/src/workload/property_scenarios.cpp" "src/workload/CMakeFiles/swmon_workload.dir/property_scenarios.cpp.o" "gcc" "src/workload/CMakeFiles/swmon_workload.dir/property_scenarios.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/swmon_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/swmon_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/properties/CMakeFiles/swmon_properties.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/swmon_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/swmon_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/swmon_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/swmon_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/swmon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
