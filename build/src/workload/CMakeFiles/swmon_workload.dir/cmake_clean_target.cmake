file(REMOVE_RECURSE
  "libswmon_workload.a"
)
