# Empty dependencies file for swmon_workload.
# This may be replaced when dependencies are built.
