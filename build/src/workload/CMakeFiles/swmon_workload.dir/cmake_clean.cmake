file(REMOVE_RECURSE
  "CMakeFiles/swmon_workload.dir/arp_scenario.cpp.o"
  "CMakeFiles/swmon_workload.dir/arp_scenario.cpp.o.d"
  "CMakeFiles/swmon_workload.dir/dhcp_agent.cpp.o"
  "CMakeFiles/swmon_workload.dir/dhcp_agent.cpp.o.d"
  "CMakeFiles/swmon_workload.dir/dhcp_scenario.cpp.o"
  "CMakeFiles/swmon_workload.dir/dhcp_scenario.cpp.o.d"
  "CMakeFiles/swmon_workload.dir/firewall_scenario.cpp.o"
  "CMakeFiles/swmon_workload.dir/firewall_scenario.cpp.o.d"
  "CMakeFiles/swmon_workload.dir/ftp_scenario.cpp.o"
  "CMakeFiles/swmon_workload.dir/ftp_scenario.cpp.o.d"
  "CMakeFiles/swmon_workload.dir/lb_scenario.cpp.o"
  "CMakeFiles/swmon_workload.dir/lb_scenario.cpp.o.d"
  "CMakeFiles/swmon_workload.dir/learning_scenario.cpp.o"
  "CMakeFiles/swmon_workload.dir/learning_scenario.cpp.o.d"
  "CMakeFiles/swmon_workload.dir/nat_scenario.cpp.o"
  "CMakeFiles/swmon_workload.dir/nat_scenario.cpp.o.d"
  "CMakeFiles/swmon_workload.dir/portknock_scenario.cpp.o"
  "CMakeFiles/swmon_workload.dir/portknock_scenario.cpp.o.d"
  "CMakeFiles/swmon_workload.dir/property_scenarios.cpp.o"
  "CMakeFiles/swmon_workload.dir/property_scenarios.cpp.o.d"
  "libswmon_workload.a"
  "libswmon_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swmon_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
