file(REMOVE_RECURSE
  "CMakeFiles/swmon_monitor.dir/engine.cpp.o"
  "CMakeFiles/swmon_monitor.dir/engine.cpp.o.d"
  "CMakeFiles/swmon_monitor.dir/features.cpp.o"
  "CMakeFiles/swmon_monitor.dir/features.cpp.o.d"
  "CMakeFiles/swmon_monitor.dir/spec.cpp.o"
  "CMakeFiles/swmon_monitor.dir/spec.cpp.o.d"
  "CMakeFiles/swmon_monitor.dir/violation.cpp.o"
  "CMakeFiles/swmon_monitor.dir/violation.cpp.o.d"
  "libswmon_monitor.a"
  "libswmon_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swmon_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
