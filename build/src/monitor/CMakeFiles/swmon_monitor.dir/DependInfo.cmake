
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monitor/engine.cpp" "src/monitor/CMakeFiles/swmon_monitor.dir/engine.cpp.o" "gcc" "src/monitor/CMakeFiles/swmon_monitor.dir/engine.cpp.o.d"
  "/root/repo/src/monitor/features.cpp" "src/monitor/CMakeFiles/swmon_monitor.dir/features.cpp.o" "gcc" "src/monitor/CMakeFiles/swmon_monitor.dir/features.cpp.o.d"
  "/root/repo/src/monitor/spec.cpp" "src/monitor/CMakeFiles/swmon_monitor.dir/spec.cpp.o" "gcc" "src/monitor/CMakeFiles/swmon_monitor.dir/spec.cpp.o.d"
  "/root/repo/src/monitor/violation.cpp" "src/monitor/CMakeFiles/swmon_monitor.dir/violation.cpp.o" "gcc" "src/monitor/CMakeFiles/swmon_monitor.dir/violation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataplane/CMakeFiles/swmon_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/swmon_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/swmon_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/swmon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
