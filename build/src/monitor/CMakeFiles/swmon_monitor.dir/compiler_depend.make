# Empty compiler generated dependencies file for swmon_monitor.
# This may be replaced when dependencies are built.
