file(REMOVE_RECURSE
  "libswmon_monitor.a"
)
