# Empty compiler generated dependencies file for swmon_netsim.
# This may be replaced when dependencies are built.
