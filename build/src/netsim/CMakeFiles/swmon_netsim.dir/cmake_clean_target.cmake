file(REMOVE_RECURSE
  "libswmon_netsim.a"
)
