file(REMOVE_RECURSE
  "CMakeFiles/swmon_netsim.dir/network.cpp.o"
  "CMakeFiles/swmon_netsim.dir/network.cpp.o.d"
  "CMakeFiles/swmon_netsim.dir/trace_io.cpp.o"
  "CMakeFiles/swmon_netsim.dir/trace_io.cpp.o.d"
  "libswmon_netsim.a"
  "libswmon_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swmon_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
