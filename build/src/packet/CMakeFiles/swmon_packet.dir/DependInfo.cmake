
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/packet/addr.cpp" "src/packet/CMakeFiles/swmon_packet.dir/addr.cpp.o" "gcc" "src/packet/CMakeFiles/swmon_packet.dir/addr.cpp.o.d"
  "/root/repo/src/packet/builder.cpp" "src/packet/CMakeFiles/swmon_packet.dir/builder.cpp.o" "gcc" "src/packet/CMakeFiles/swmon_packet.dir/builder.cpp.o.d"
  "/root/repo/src/packet/checksum.cpp" "src/packet/CMakeFiles/swmon_packet.dir/checksum.cpp.o" "gcc" "src/packet/CMakeFiles/swmon_packet.dir/checksum.cpp.o.d"
  "/root/repo/src/packet/dhcp.cpp" "src/packet/CMakeFiles/swmon_packet.dir/dhcp.cpp.o" "gcc" "src/packet/CMakeFiles/swmon_packet.dir/dhcp.cpp.o.d"
  "/root/repo/src/packet/field.cpp" "src/packet/CMakeFiles/swmon_packet.dir/field.cpp.o" "gcc" "src/packet/CMakeFiles/swmon_packet.dir/field.cpp.o.d"
  "/root/repo/src/packet/ftp.cpp" "src/packet/CMakeFiles/swmon_packet.dir/ftp.cpp.o" "gcc" "src/packet/CMakeFiles/swmon_packet.dir/ftp.cpp.o.d"
  "/root/repo/src/packet/headers.cpp" "src/packet/CMakeFiles/swmon_packet.dir/headers.cpp.o" "gcc" "src/packet/CMakeFiles/swmon_packet.dir/headers.cpp.o.d"
  "/root/repo/src/packet/parser.cpp" "src/packet/CMakeFiles/swmon_packet.dir/parser.cpp.o" "gcc" "src/packet/CMakeFiles/swmon_packet.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/swmon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
