file(REMOVE_RECURSE
  "libswmon_packet.a"
)
