file(REMOVE_RECURSE
  "CMakeFiles/swmon_packet.dir/addr.cpp.o"
  "CMakeFiles/swmon_packet.dir/addr.cpp.o.d"
  "CMakeFiles/swmon_packet.dir/builder.cpp.o"
  "CMakeFiles/swmon_packet.dir/builder.cpp.o.d"
  "CMakeFiles/swmon_packet.dir/checksum.cpp.o"
  "CMakeFiles/swmon_packet.dir/checksum.cpp.o.d"
  "CMakeFiles/swmon_packet.dir/dhcp.cpp.o"
  "CMakeFiles/swmon_packet.dir/dhcp.cpp.o.d"
  "CMakeFiles/swmon_packet.dir/field.cpp.o"
  "CMakeFiles/swmon_packet.dir/field.cpp.o.d"
  "CMakeFiles/swmon_packet.dir/ftp.cpp.o"
  "CMakeFiles/swmon_packet.dir/ftp.cpp.o.d"
  "CMakeFiles/swmon_packet.dir/headers.cpp.o"
  "CMakeFiles/swmon_packet.dir/headers.cpp.o.d"
  "CMakeFiles/swmon_packet.dir/parser.cpp.o"
  "CMakeFiles/swmon_packet.dir/parser.cpp.o.d"
  "libswmon_packet.a"
  "libswmon_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swmon_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
