# Empty dependencies file for swmon_packet.
# This may be replaced when dependencies are built.
