file(REMOVE_RECURSE
  "libswmon_apps.a"
)
