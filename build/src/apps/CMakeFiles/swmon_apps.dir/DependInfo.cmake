
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/arp_proxy.cpp" "src/apps/CMakeFiles/swmon_apps.dir/arp_proxy.cpp.o" "gcc" "src/apps/CMakeFiles/swmon_apps.dir/arp_proxy.cpp.o.d"
  "/root/repo/src/apps/flow_table_switch.cpp" "src/apps/CMakeFiles/swmon_apps.dir/flow_table_switch.cpp.o" "gcc" "src/apps/CMakeFiles/swmon_apps.dir/flow_table_switch.cpp.o.d"
  "/root/repo/src/apps/learning_switch.cpp" "src/apps/CMakeFiles/swmon_apps.dir/learning_switch.cpp.o" "gcc" "src/apps/CMakeFiles/swmon_apps.dir/learning_switch.cpp.o.d"
  "/root/repo/src/apps/load_balancer.cpp" "src/apps/CMakeFiles/swmon_apps.dir/load_balancer.cpp.o" "gcc" "src/apps/CMakeFiles/swmon_apps.dir/load_balancer.cpp.o.d"
  "/root/repo/src/apps/nat.cpp" "src/apps/CMakeFiles/swmon_apps.dir/nat.cpp.o" "gcc" "src/apps/CMakeFiles/swmon_apps.dir/nat.cpp.o.d"
  "/root/repo/src/apps/port_knocking.cpp" "src/apps/CMakeFiles/swmon_apps.dir/port_knocking.cpp.o" "gcc" "src/apps/CMakeFiles/swmon_apps.dir/port_knocking.cpp.o.d"
  "/root/repo/src/apps/stateful_firewall.cpp" "src/apps/CMakeFiles/swmon_apps.dir/stateful_firewall.cpp.o" "gcc" "src/apps/CMakeFiles/swmon_apps.dir/stateful_firewall.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataplane/CMakeFiles/swmon_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/swmon_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/swmon_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/swmon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
