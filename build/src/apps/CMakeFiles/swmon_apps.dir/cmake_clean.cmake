file(REMOVE_RECURSE
  "CMakeFiles/swmon_apps.dir/arp_proxy.cpp.o"
  "CMakeFiles/swmon_apps.dir/arp_proxy.cpp.o.d"
  "CMakeFiles/swmon_apps.dir/flow_table_switch.cpp.o"
  "CMakeFiles/swmon_apps.dir/flow_table_switch.cpp.o.d"
  "CMakeFiles/swmon_apps.dir/learning_switch.cpp.o"
  "CMakeFiles/swmon_apps.dir/learning_switch.cpp.o.d"
  "CMakeFiles/swmon_apps.dir/load_balancer.cpp.o"
  "CMakeFiles/swmon_apps.dir/load_balancer.cpp.o.d"
  "CMakeFiles/swmon_apps.dir/nat.cpp.o"
  "CMakeFiles/swmon_apps.dir/nat.cpp.o.d"
  "CMakeFiles/swmon_apps.dir/port_knocking.cpp.o"
  "CMakeFiles/swmon_apps.dir/port_knocking.cpp.o.d"
  "CMakeFiles/swmon_apps.dir/stateful_firewall.cpp.o"
  "CMakeFiles/swmon_apps.dir/stateful_firewall.cpp.o.d"
  "libswmon_apps.a"
  "libswmon_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swmon_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
