# Empty dependencies file for swmon_apps.
# This may be replaced when dependencies are built.
