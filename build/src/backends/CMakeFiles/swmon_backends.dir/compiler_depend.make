# Empty compiler generated dependencies file for swmon_backends.
# This may be replaced when dependencies are built.
