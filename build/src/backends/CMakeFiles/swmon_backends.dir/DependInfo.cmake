
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backends/backends.cpp" "src/backends/CMakeFiles/swmon_backends.dir/backends.cpp.o" "gcc" "src/backends/CMakeFiles/swmon_backends.dir/backends.cpp.o.d"
  "/root/repo/src/backends/executor.cpp" "src/backends/CMakeFiles/swmon_backends.dir/executor.cpp.o" "gcc" "src/backends/CMakeFiles/swmon_backends.dir/executor.cpp.o.d"
  "/root/repo/src/backends/state_store.cpp" "src/backends/CMakeFiles/swmon_backends.dir/state_store.cpp.o" "gcc" "src/backends/CMakeFiles/swmon_backends.dir/state_store.cpp.o.d"
  "/root/repo/src/backends/table_monitor.cpp" "src/backends/CMakeFiles/swmon_backends.dir/table_monitor.cpp.o" "gcc" "src/backends/CMakeFiles/swmon_backends.dir/table_monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/monitor/CMakeFiles/swmon_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/swmon_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/swmon_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/swmon_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/swmon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
