file(REMOVE_RECURSE
  "libswmon_backends.a"
)
