file(REMOVE_RECURSE
  "CMakeFiles/swmon_backends.dir/backends.cpp.o"
  "CMakeFiles/swmon_backends.dir/backends.cpp.o.d"
  "CMakeFiles/swmon_backends.dir/executor.cpp.o"
  "CMakeFiles/swmon_backends.dir/executor.cpp.o.d"
  "CMakeFiles/swmon_backends.dir/state_store.cpp.o"
  "CMakeFiles/swmon_backends.dir/state_store.cpp.o.d"
  "CMakeFiles/swmon_backends.dir/table_monitor.cpp.o"
  "CMakeFiles/swmon_backends.dir/table_monitor.cpp.o.d"
  "libswmon_backends.a"
  "libswmon_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swmon_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
