file(REMOVE_RECURSE
  "CMakeFiles/swmon_properties.dir/catalog.cpp.o"
  "CMakeFiles/swmon_properties.dir/catalog.cpp.o.d"
  "libswmon_properties.a"
  "libswmon_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swmon_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
