file(REMOVE_RECURSE
  "libswmon_properties.a"
)
