# Empty compiler generated dependencies file for swmon_properties.
# This may be replaced when dependencies are built.
