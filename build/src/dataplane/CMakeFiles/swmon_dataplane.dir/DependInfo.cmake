
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataplane/flow_mod_queue.cpp" "src/dataplane/CMakeFiles/swmon_dataplane.dir/flow_mod_queue.cpp.o" "gcc" "src/dataplane/CMakeFiles/swmon_dataplane.dir/flow_mod_queue.cpp.o.d"
  "/root/repo/src/dataplane/flow_table.cpp" "src/dataplane/CMakeFiles/swmon_dataplane.dir/flow_table.cpp.o" "gcc" "src/dataplane/CMakeFiles/swmon_dataplane.dir/flow_table.cpp.o.d"
  "/root/repo/src/dataplane/match.cpp" "src/dataplane/CMakeFiles/swmon_dataplane.dir/match.cpp.o" "gcc" "src/dataplane/CMakeFiles/swmon_dataplane.dir/match.cpp.o.d"
  "/root/repo/src/dataplane/state_table.cpp" "src/dataplane/CMakeFiles/swmon_dataplane.dir/state_table.cpp.o" "gcc" "src/dataplane/CMakeFiles/swmon_dataplane.dir/state_table.cpp.o.d"
  "/root/repo/src/dataplane/switch.cpp" "src/dataplane/CMakeFiles/swmon_dataplane.dir/switch.cpp.o" "gcc" "src/dataplane/CMakeFiles/swmon_dataplane.dir/switch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/packet/CMakeFiles/swmon_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/swmon_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/swmon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
