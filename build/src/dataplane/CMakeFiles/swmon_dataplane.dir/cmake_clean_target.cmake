file(REMOVE_RECURSE
  "libswmon_dataplane.a"
)
