# Empty compiler generated dependencies file for swmon_dataplane.
# This may be replaced when dependencies are built.
