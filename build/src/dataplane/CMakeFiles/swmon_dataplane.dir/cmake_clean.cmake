file(REMOVE_RECURSE
  "CMakeFiles/swmon_dataplane.dir/flow_mod_queue.cpp.o"
  "CMakeFiles/swmon_dataplane.dir/flow_mod_queue.cpp.o.d"
  "CMakeFiles/swmon_dataplane.dir/flow_table.cpp.o"
  "CMakeFiles/swmon_dataplane.dir/flow_table.cpp.o.d"
  "CMakeFiles/swmon_dataplane.dir/match.cpp.o"
  "CMakeFiles/swmon_dataplane.dir/match.cpp.o.d"
  "CMakeFiles/swmon_dataplane.dir/state_table.cpp.o"
  "CMakeFiles/swmon_dataplane.dir/state_table.cpp.o.d"
  "CMakeFiles/swmon_dataplane.dir/switch.cpp.o"
  "CMakeFiles/swmon_dataplane.dir/switch.cpp.o.d"
  "libswmon_dataplane.a"
  "libswmon_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swmon_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
