# Empty compiler generated dependencies file for bench_external_monitor.
# This may be replaced when dependencies are built.
