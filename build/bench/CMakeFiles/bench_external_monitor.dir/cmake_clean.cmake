file(REMOVE_RECURSE
  "CMakeFiles/bench_external_monitor.dir/bench_external_monitor.cpp.o"
  "CMakeFiles/bench_external_monitor.dir/bench_external_monitor.cpp.o.d"
  "bench_external_monitor"
  "bench_external_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_external_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
