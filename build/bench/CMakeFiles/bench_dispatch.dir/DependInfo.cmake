
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_dispatch.cpp" "bench/CMakeFiles/bench_dispatch.dir/bench_dispatch.cpp.o" "gcc" "bench/CMakeFiles/bench_dispatch.dir/bench_dispatch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/swmon_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/backends/CMakeFiles/swmon_backends.dir/DependInfo.cmake"
  "/root/repo/build/src/spl/CMakeFiles/swmon_spl.dir/DependInfo.cmake"
  "/root/repo/build/src/properties/CMakeFiles/swmon_properties.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/swmon_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/swmon_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/swmon_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/swmon_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/swmon_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/swmon_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/swmon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
