# Empty dependencies file for bench_state_update.
# This may be replaced when dependencies are built.
