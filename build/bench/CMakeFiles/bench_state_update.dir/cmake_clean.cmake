file(REMOVE_RECURSE
  "CMakeFiles/bench_state_update.dir/bench_state_update.cpp.o"
  "CMakeFiles/bench_state_update.dir/bench_state_update.cpp.o.d"
  "bench_state_update"
  "bench_state_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_state_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
