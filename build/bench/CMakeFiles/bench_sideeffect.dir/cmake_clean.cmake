file(REMOVE_RECURSE
  "CMakeFiles/bench_sideeffect.dir/bench_sideeffect.cpp.o"
  "CMakeFiles/bench_sideeffect.dir/bench_sideeffect.cpp.o.d"
  "bench_sideeffect"
  "bench_sideeffect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sideeffect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
