# Empty compiler generated dependencies file for bench_sideeffect.
# This may be replaced when dependencies are built.
