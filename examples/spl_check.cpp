// spl_check — lint, analyze, and target-check a property written in SPL.
//
// Reads an .spl file (or a built-in sample), then:
//   1. parses and validates it,
//   2. prints the normalized spec and its Table-1 feature row,
//   3. asks every Table-2 backend whether its mechanism could monitor it.
//
// Usage: spl_check [file.spl]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "backends/backend.hpp"
#include "monitor/features.hpp"
#include "spl/spl.hpp"

using namespace swmon;

namespace {

constexpr const char* kSample = R"(
# Built-in sample: the Sec-2.1 basic firewall property.
property fw-return-not-dropped {
  description "After A->B, packets from B to A are not dropped";
  mode symmetric;
  vars A, B;
  stage "outbound" on arrival {
    match in_port == 1;
    bind A = ip_src;
    bind B = ip_dst;
  }
  stage "return dropped" on egress {
    match ip_src == $B;
    match ip_dst == $A;
    match egress_action == drop;
  }
}
)";

}  // namespace

int main(int argc, char** argv) {
  std::string text = kSample;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
    std::printf("checking %s\n\n", argv[1]);
  } else {
    std::printf("checking the built-in sample (pass a .spl file to check "
                "your own)\n\n");
  }

  const SplParseResult result = ParseSpl(text);
  if (!result.ok()) {
    std::fprintf(stderr, "parse error: %s\n", result.error.c_str());
    return 1;
  }
  const Property& prop = *result.property;
  std::printf("%s\n", prop.ToString().c_str());

  const FeatureSet features = AnalyzeFeatures(prop);
  std::printf("required features (Table-1 row):\n  Fields|Hist |T.out|Oblig"
              "|Ident|Neg  |T.Act|Multi| Inst. ID\n  %s\n\n",
              features.ToRow().c_str());

  std::printf("which switch designs could host this monitor?\n");
  for (const auto& backend : AllBackends()) {
    const auto r = backend->Compile(prop, CostParams{});
    std::printf("  %-16s %s\n", backend->info().name.c_str(),
                r.ok() ? "YES" : "no:");
    if (!r.ok())
      for (const auto& reason : r.unsupported)
        std::printf("%20s- %s\n", "", reason.c_str());
  }
  std::printf("\ncanonical form (SerializeSpl):\n%s",
              SerializeSpl(prop).c_str());
  return 0;
}
