// NAT translation audit — the paper's Sec-2.2 walkthrough as a tool.
//
// Runs a NAT under traffic with the reverse-translation property attached
// at FULL provenance, so each alert reconstructs the four observation
// stages: the original outbound packet, its translated departure, the
// return packet, and the mistranslated delivery. This is the "what led up
// to the violation" debugging story of Feature 10.
//
// Usage: nat_audit [wrong-port|wrong-addr|none]   (default: wrong-port)
#include <cstdio>
#include <cstring>

#include "workload/nat_scenario.hpp"

using namespace swmon;

int main(int argc, char** argv) {
  NatFault fault = NatFault::kWrongReversePort;
  if (argc > 1) {
    if (!std::strcmp(argv[1], "wrong-addr")) fault = NatFault::kWrongReverseAddr;
    else if (!std::strcmp(argv[1], "none")) fault = NatFault::kNone;
  }

  NatScenarioConfig config;
  config.fault = fault;
  config.flows = 5;
  config.exchanges_per_flow = 1;
  config.options.provenance = ProvenanceLevel::kFull;
  std::printf("auditing NAT reverse translation (fault: %s)...\n\n",
              fault == NatFault::kNone ? "none"
              : fault == NatFault::kWrongReversePort ? "wrong reverse port"
                                                     : "wrong reverse address");

  const auto out = RunNatScenario(config);
  std::printf("packets: %zu, violations: %zu\n\n", out.packets_injected,
              out.TotalViolations());

  std::size_t shown = 0;
  for (const auto& v : out.monitors->AllViolations()) {
    std::printf("%s\n\n", v.ToString().c_str());
    if (++shown == 2) break;  // two full audits are plenty
  }
  if (out.TotalViolations() == 0)
    std::printf("every return packet was translated back to its original "
                "(A, P) — the NAT is consistent.\n");
  return 0;
}
