// Quickstart: monitor a stateful firewall for the paper's Sec-2.1 property.
//
//   1. Write the property with PropertyBuilder (the violation pattern:
//      "A->B seen, then B->A dropped").
//   2. Build a tiny network: one switch running a (buggy) firewall, one
//      inside host, one outside host.
//   3. Attach a monitor to the switch and run traffic (the interpreter
//      by default; SWMON_ENGINE=compiled selects the bytecode engine —
//      same violations either way).
//   4. Read the violations.
//
// Build & run:  ./build/examples/quickstart
//
// Set SWMON_TELEMETRY_DUMP=json (or =prometheus) to print the full
// telemetry snapshot — every monitor and switch counter — on exit.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "apps/stateful_firewall.hpp"
#include "monitor/property_builder.hpp"
#include "monitor/property_monitor.hpp"
#include "netsim/network.hpp"
#include "packet/builder.hpp"
#include "telemetry/snapshot.hpp"

using namespace swmon;

int main() {
  // --- 1. the property -------------------------------------------------
  PropertyBuilder builder(
      "fw-return-allowed",
      "After seeing traffic from internal host A to external host B, "
      "packets from B to A are not dropped (Sec 2.1)");
  const VarId A = builder.Var("A"), B = builder.Var("B");
  builder.AddStage("outbound A->B")
      .Match(PatternBuilder::Arrival().Eq(FieldId::kInPort, 1).Build())
      .Bind(A, FieldId::kIpSrc)
      .Bind(B, FieldId::kIpDst);
  builder.AddStage("return B->A dropped")
      .Match(PatternBuilder::Egress()
                 .EqVar(FieldId::kIpSrc, B)
                 .EqVar(FieldId::kIpDst, A)
                 .Dropped()
                 .Build());
  Property property = std::move(builder).Build();
  std::printf("%s\n", property.ToString().c_str());

  // --- 2. the network under test ---------------------------------------
  Network net;
  SoftSwitch& sw = net.AddSwitch(/*switch_id=*/1, /*ports=*/2);
  FirewallConfig fw;
  fw.internal_ports = {PortId{1}};
  fw.external_port = PortId{2};
  fw.fault = FirewallFault::kDropEstablishedReturn;  // the bug to catch
  StatefulFirewallApp firewall(fw);
  sw.SetProgram(&firewall);

  Host& alice = net.AddHost("alice", MacAddr(0x02, 0, 0, 0, 0, 1),
                            Ipv4Addr(10, 0, 0, 1));
  Host& bob = net.AddHost("bob", MacAddr(0x02, 0, 0, 0, 0, 2),
                          Ipv4Addr(198, 51, 100, 1));
  net.Attach(1, PortId{1}, alice);
  net.Attach(1, PortId{2}, bob);

  // --- 3. attach the monitor and run traffic ---------------------------
  // CreatePropertyMonitor picks the engine: the interpreter unless
  // MonitorConfig::engine (or SWMON_ENGINE=compiled) says otherwise.
  auto monitor_ptr = CreatePropertyMonitor(property);
  PropertyMonitor& monitor = *monitor_ptr;
  sw.AddObserver(&monitor);

  // alice opens a connection; bob replies — which the buggy firewall drops.
  net.SendFromHost(alice,
                   BuildTcp(alice.mac(), bob.mac(), alice.ip(), bob.ip(),
                            12345, 443, kTcpSyn),
                   SimTime::Zero() + Duration::Millis(1));
  net.SendFromHost(bob,
                   BuildTcp(bob.mac(), alice.mac(), bob.ip(), alice.ip(), 443,
                            12345, kTcpSyn | kTcpAck),
                   SimTime::Zero() + Duration::Millis(5));
  net.Run();

  // --- 4. the verdict ---------------------------------------------------
  // All counters — the engine's and the switch's — read through one
  // point-in-time snapshot.
  telemetry::Snapshot snap;
  monitor.CollectInto(snap, property.name);
  sw.CollectInto(snap);
  std::printf("events seen: %llu, live instances: %zu\n",
              static_cast<unsigned long long>(
                  snap.counter("monitor.engine.fw-return-allowed.events")),
              monitor.live_instances());
  for (const auto& v : monitor.violations())
    std::printf("%s\n", v.ToString().c_str());
  std::printf(monitor.violations().empty()
                  ? "no violations — the firewall behaved\n"
                  : "\nthe monitor caught the buggy firewall red-handed\n");

  if (const char* dump = std::getenv("SWMON_TELEMETRY_DUMP")) {
    if (std::strcmp(dump, "prometheus") == 0)
      std::printf("\n%s", snap.ToPrometheusText().c_str());
    else
      std::printf("\n%s\n", snap.ToJson().c_str());
  }
  return monitor.violations().empty() ? 1 : 0;
}
