// Backend explorer — ask "can approach X monitor property Y, and what does
// it cost?" for any catalog property.
//
// For the chosen property this prints each Table-2 approach's verdict:
// either the blocking features (the paper's semantic gaps, as compiler
// diagnostics) or a live run on the mechanism with its cost profile
// (pipeline depth, state ops, flow-mods).
//
// Usage: backend_explorer [property-name]   (default: dhcparp-cache-preload)
//        backend_explorer --list
#include <cstdio>
#include <cstring>

#include "backends/backend.hpp"
#include "properties/catalog.hpp"
#include "workload/firewall_scenario.hpp"

using namespace swmon;

int main(int argc, char** argv) {
  const auto catalog = BuildCatalog();
  std::string wanted = "dhcparp-cache-preload";
  if (argc > 1) {
    if (!std::strcmp(argv[1], "--list")) {
      for (const auto& e : catalog)
        std::printf("%-8s %s\n", e.id, e.property.name.c_str());
      return 0;
    }
    wanted = argv[1];
  }

  const CatalogEntry* entry = nullptr;
  for (const auto& e : catalog)
    if (e.property.name == wanted) entry = &e;
  if (entry == nullptr) {
    std::fprintf(stderr, "unknown property %s (try --list)\n", wanted.c_str());
    return 1;
  }

  std::printf("%s\n", entry->property.ToString().c_str());

  // A generic exercise trace so compiled monitors have something to chew
  // on (firewall traffic; harmless for unrelated properties).
  FirewallScenarioConfig traffic;
  traffic.fault = FirewallFault::kDropEstablishedReturn;
  traffic.options.keep_trace = true;
  traffic.close_fraction = 0;
  traffic.stale_return_fraction = 0;
  const auto workload = RunFirewallScenario(traffic);

  const CostParams params;
  for (const auto& backend : AllBackends()) {
    const BackendInfo info = backend->info();
    std::printf("== %s (%s, %s)\n", info.name.c_str(),
                info.state_mechanism.c_str(), info.update_datapath.c_str());
    auto result = backend->Compile(entry->property, params);
    if (!result.ok()) {
      for (const auto& reason : result.unsupported)
        std::printf("   cannot monitor: %s\n", reason.c_str());
      continue;
    }
    workload.trace->ReplayInto(*result.monitor);
    result.monitor->AdvanceTime(workload.end_time);
    const CostCounters& c = result.monitor->costs();
    std::printf(
        "   compiled. pipeline depth %zu | live instances %zu | violations "
        "%zu\n   events %llu | table lookups %llu | state ops %llu | "
        "register ops %llu | flow-mods %llu\n",
        result.monitor->PipelineDepth(), result.monitor->live_instances(),
        result.monitor->violations().size(),
        static_cast<unsigned long long>(c.packets),
        static_cast<unsigned long long>(c.table_lookups),
        static_cast<unsigned long long>(c.state_table_ops),
        static_cast<unsigned long long>(c.register_ops),
        static_cast<unsigned long long>(c.flow_mods));
  }
  return 0;
}
