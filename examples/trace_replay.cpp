// trace_replay — record once, monitor offline, any property.
//
// The end-to-end offline workflow:
//
//   # 1. record a scenario's dataplane event stream to a file
//   trace_replay record firewall /tmp/fw.swmt          # faulted firewall
//   trace_replay record firewall-ok /tmp/fwok.swmt     # correct firewall
//   trace_replay record adversarial:fw_evasion /tmp/adv.swmt
//   trace_replay list                                  # registry names
//
//   # 2. run any SPL property over a recorded trace
//   trace_replay check /tmp/fw.swmt examples/properties/firewall.spl
//
//   # 2b. or follow a trace file that is still being written (swmond's
//   # tailer source), printing violations as they happen
//   trace_replay check --follow /tmp/live.swmt examples/properties/firewall.spl
//
// Recording resolves scenarios through the ScenarioRegistry (device
// scenarios, the adversarial family, or any catalog property name);
// checking parses the property,
// replays the trace into a fresh MonitorEngine at full provenance, and
// prints every violation. --follow keeps polling for appended events until
// interrupted (or, if SWMON_FOLLOW_IDLE_EXIT_MS is set, until the file has
// been idle that long — used by the test suite).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "daemon/event_source.hpp"
#include "monitor/engine.hpp"
#include "netsim/trace_io.hpp"
#include "spl/spl.hpp"
#include "workload/scenario_registry.hpp"

using namespace swmon;

namespace {

int ListScenarios() {
  std::printf("%-28s %s\n", "name", "description");
  for (const ScenarioEntry& e : ScenarioRegistryEntries())
    std::printf("%-28s %s\n", e.name.c_str(), e.description.c_str());
  std::printf(
      "\nAppend -ok to a device scenario for the correct (non-faulted) "
      "implementation; catalog property names are accepted too.\n");
  return 0;
}

int Record(const std::string& what, const std::string& path) {
  // "<name>" = the faulted device, "<name>-ok" = the correct one.
  std::string scenario = what;
  bool faulted = true;
  if (scenario.size() > 3 && scenario.ends_with("-ok")) {
    scenario = scenario.substr(0, scenario.size() - 3);
    faulted = false;
  }
  // Legacy friendly name kept from before the registry ("portknock" is the
  // registered spelling).
  if (scenario == "knock") scenario = "portknock";
  // Pin the pre-registry primary property for 'firewall' so recorded
  // traces keep pairing with examples/properties/firewall.spl.
  if (scenario == "firewall") scenario = "fw-return-not-dropped-until-close";

  ScenarioOptions opts;
  opts.keep_trace = true;
  const auto out = RunScenarioByName(scenario, faulted, opts);
  if (!out.trace || out.trace->size() == 0) {
    std::fprintf(stderr,
                 "unknown scenario '%s' (run `trace_replay list`, or use a "
                 "catalog property name, with optional -ok suffix)\n",
                 what.c_str());
    return 1;
  }
  std::string error;
  if (!SaveTrace(*out.trace, path, &error)) {
    std::fprintf(stderr, "save failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("recorded %zu events (%zu packets, %zu on-switch violations) "
              "to %s\n",
              out.trace->size(), out.packets_injected, out.TotalViolations(),
              path.c_str());
  return 0;
}

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

/// Monitors a still-growing trace file live via the daemon's tailer source.
int Follow(const std::string& trace_path, const Property& property) {
  MonitorConfig mc;
  mc.provenance = ProvenanceLevel::kFull;
  MonitorEngine engine(property, mc);
  TraceTailer tailer(trace_path);

  long idle_exit_ms = -1;
  if (const char* env = std::getenv("SWMON_FOLLOW_IDLE_EXIT_MS"))
    idle_exit_ms = std::atol(env);

  std::signal(SIGINT, OnSignal);
  std::printf("following %s with '%s' (ctrl-c to stop)\n", trace_path.c_str(),
              property.name.c_str());
  std::fflush(stdout);

  std::vector<DataplaneEvent> batch;
  long idle_ms = 0;
  std::uint64_t total = 0;
  std::size_t violations = 0;
  while (!g_stop) {
    batch.clear();
    const bool alive = tailer.Poll(batch);
    for (const DataplaneEvent& ev : batch) engine.ProcessEvent(ev);
    for (Violation& v : engine.TakeViolations()) {
      ++violations;
      std::printf("%s\n\n", v.ToString().c_str());
      std::fflush(stdout);
    }
    total += batch.size();
    if (!alive) {
      std::fprintf(stderr, "tailer stopped: %s\n", tailer.error().c_str());
      return 1;
    }
    if (batch.empty()) {
      if (idle_exit_ms >= 0 && (idle_ms += 20) >= idle_exit_ms) break;
      usleep(20 * 1000);
    } else {
      idle_ms = 0;
    }
  }
  std::printf("followed %llu events through '%s': %zu violation(s)\n",
              static_cast<unsigned long long>(total), property.name.c_str(),
              violations);
  return 0;
}

int Check(const std::string& trace_path, const std::string& spl_path,
          bool follow) {
  std::ifstream in(spl_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", spl_path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const SplParseResult parsed = ParseSpl(buf.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n", parsed.error.c_str());
    return 1;
  }

  if (follow) return Follow(trace_path, *parsed.property);

  TraceRecorder trace;
  std::string error;
  if (!LoadTrace(trace_path, trace, &error)) {
    std::fprintf(stderr, "load failed: %s\n", error.c_str());
    return 1;
  }

  MonitorConfig mc;
  mc.provenance = ProvenanceLevel::kFull;
  MonitorEngine engine(*parsed.property, mc);
  trace.ReplayInto(engine);
  if (!trace.events().empty()) {
    engine.AdvanceTime(trace.events().back().time + Duration::Seconds(120));
  }

  std::printf("replayed %zu events through '%s': %zu violation(s)\n\n",
              trace.size(), parsed.property->name.c_str(),
              engine.violations().size());
  for (const auto& v : engine.violations())
    std::printf("%s\n\n", v.ToString().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && !std::strcmp(argv[1], "list")) return ListScenarios();
  if (argc == 4 && !std::strcmp(argv[1], "record"))
    return Record(argv[2], argv[3]);
  if (argc == 4 && !std::strcmp(argv[1], "check"))
    return Check(argv[2], argv[3], /*follow=*/false);
  if (argc == 5 && !std::strcmp(argv[1], "check") &&
      !std::strcmp(argv[2], "--follow"))
    return Check(argv[3], argv[4], /*follow=*/true);
  std::fprintf(stderr,
               "usage:\n  %s list\n"
               "  %s record <scenario[-ok]> <out.swmt>\n"
               "  %s check [--follow] <trace.swmt> <property.spl>\n",
               argv[0], argv[0], argv[0]);
  return 2;
}
