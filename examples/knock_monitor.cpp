// Port-knocking gate monitor — Table 1's two Varanus-derived properties as
// a deployable check.
//
// Drives a port-knocking gate with clean and corrupted knock sequences
// under both knock properties simultaneously:
//   "intervening guesses invalidate sequence"  (gate must stay closed)
//   "recognize valid sequence"                 (gate must open)
// and demonstrates that each fault mode is caught by exactly the property
// written for it.
//
// Usage: knock_monitor [none|ignore-invalidation|never-open]
#include <cstdio>
#include <cstring>

#include "workload/portknock_scenario.hpp"

using namespace swmon;

namespace {

void RunOnce(PortKnockFault fault, const char* label) {
  PortKnockScenarioConfig config;
  config.fault = fault;
  config.clean_sessions = 4;
  config.corrupted_sessions = 4;
  const auto out = RunPortKnockScenario(config);
  std::printf("%-22s | invalidation ignored: %zu | never recognized: %zu\n",
              label, out.ViolationsOf("knock-invalidation"),
              out.ViolationsOf("knock-recognize"));
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("port-knock gate: 4 clean sessions + 4 sessions with an "
              "intervening wrong guess, each followed by an SSH attempt\n\n");
  std::printf("%-22s | %s\n", "gate under test", "violations detected");

  if (argc > 1) {
    PortKnockFault fault = PortKnockFault::kNone;
    if (!std::strcmp(argv[1], "ignore-invalidation"))
      fault = PortKnockFault::kIgnoreInvalidation;
    else if (!std::strcmp(argv[1], "never-open"))
      fault = PortKnockFault::kNeverOpen;
    RunOnce(fault, argv[1]);
    return 0;
  }
  RunOnce(PortKnockFault::kNone, "correct gate");
  RunOnce(PortKnockFault::kIgnoreInvalidation, "ignores invalidation");
  RunOnce(PortKnockFault::kNeverOpen, "never opens");
  std::printf(
      "\nEach bug lights up exactly the property written for it; the "
      "correct gate stays quiet under both.\n");
  return 0;
}
